"""Online BFS serving layer.

Turns the batch-mode :class:`~repro.core.engine.IBFS` engine into a
request/response service: many clients submit independent single-source
queries, a micro-batcher re-forms them into GroupBy-optimized groups
(the paper's insight that ``i`` well-grouped instances run far faster
jointly than back-to-back, applied as dynamic batching), an LRU cache
absorbs the hot-vertex skew of power-law traffic, and bounded queues
shed load when the simulated device pool saturates.

* :mod:`repro.service.request` — request/response model;
* :mod:`repro.service.batcher` — size/deadline micro-batching with
  GroupBy batch formation;
* :mod:`repro.service.cache` — LRU depth-row cache;
* :mod:`repro.service.metrics` — latency/occupancy/sharing metrics;
* :mod:`repro.service.server` — the discrete-event server and a
  synchronous in-process client;
* :mod:`repro.service.loadgen` — closed-loop load generation with
  Zipf-over-degree source skew.
"""

from repro.service.request import (
    Request,
    Response,
    REQUEST_KINDS,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from repro.service.cache import ResultCache, engine_cache_key, graph_cache_id
from repro.service.metrics import BatchRecord, MetricsRegistry, percentile
from repro.service.batcher import MicroBatcher
from repro.service.server import BFSServer, InProcessClient, ServingConfig
from repro.service.loadgen import (
    LoadResult,
    WorkloadConfig,
    compare_serving,
    naive_config,
    run_closed_loop,
    sample_sources,
)

__all__ = [
    "Request",
    "Response",
    "REQUEST_KINDS",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_FAILED",
    "ResultCache",
    "engine_cache_key",
    "graph_cache_id",
    "BatchRecord",
    "MetricsRegistry",
    "percentile",
    "MicroBatcher",
    "BFSServer",
    "InProcessClient",
    "ServingConfig",
    "LoadResult",
    "WorkloadConfig",
    "compare_serving",
    "naive_config",
    "run_closed_loop",
    "sample_sources",
]
