"""The online concurrent-BFS server.

``BFSServer`` accepts a stream of single-source requests and serves
them through the existing :class:`~repro.core.engine.IBFS` engine via
its re-entrant :meth:`~repro.core.engine.IBFS.run_group` hook.  The
pipeline per request:

1. **admission** — the bounded pending queue either admits the request
   or sheds it with :class:`~repro.errors.QueueFullError`
   (backpressure toward the client);
2. **cache** — an LRU of depth rows keyed by
   ``(graph_id, source, engine_key, max_depth)`` answers repeat
   sources without traversal;
3. **micro-batching** — misses pool in a :class:`MicroBatcher` that
   flushes GroupBy-formed batches on size or deadline;
4. **execution** — each batch runs as one joint kernel on the least
   loaded simulated device; a failed kernel is retried once per
   request before a :data:`~repro.service.request.STATUS_FAILED`
   response;
5. **completion** — per-request latency, batch occupancy, sharing
   degree, and cache statistics land in a :class:`MetricsRegistry`.

Like every engine in this repository, the server runs in *simulated*
time: it is a discrete-event system driven by explicit arrival
timestamps, so a given (graph, request stream, config) triple always
produces bit-identical depths, latencies, and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.executor import GroupExecutor
    from repro.obs.slo import SLOEngine

import numpy as np

from repro.errors import QueueFullError, ReproError, ServiceError
from repro.graph.csr import CSRGraph
from repro.obs import tracing as obs_tracing
from repro.obs.slo import (
    SIGNAL_ERROR_RATE,
    SIGNAL_QUEUE_DEPTH,
    SIGNAL_WAVE_LATENCY,
)
from repro.gpusim.device import Device
from repro.plan.policy import DirectionPolicy, Policy, planner_cache_name
from repro.core.engine import IBFSConfig
from repro.core.groupby import GroupByConfig
from repro.runtime import SubstrateSpec, make_substrate
from repro.runtime.spec import engine_key as substrate_engine_key
from repro.service.batcher import MicroBatcher
from repro.service.cache import (
    PlanCache,
    ResultCache,
    graph_cache_id,
)
from repro.service.metrics import BatchRecord, MetricsRegistry
from repro.service.request import (
    PendingRequest,
    Request,
    Response,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
)


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of a :class:`BFSServer`.

    Attributes
    ----------
    batch_size:
        Maximum traversal sources per batch (the paper's N); clamped by
        the device capacity rule at server construction.
    flush_deadline:
        Simulated seconds the oldest pending request may wait before a
        partial batch is flushed anyway.  Simulated kernels run in
        microseconds at laptop scale, so the default is 20 µs — pick a
        value a small multiple of one batch's simulated seconds.
    queue_capacity:
        Bound on the pending pool; submissions beyond it are shed with
        :class:`~repro.errors.QueueFullError`.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    plan_cache_capacity:
        LRU plan-cache entries (0 disables plan caching).  A repeated
        batch — same ordered sources, same graph, same engine key —
        replays its recorded :class:`~repro.plan.types.RunPlan` instead
        of re-running the planner heuristics; depths and counters are
        bit-identical either way.
    num_devices:
        Simulated devices executing batches (a small device pool; the
        queue backs up — and sheds — when all are busy).
    default_timeout:
        Per-request timeout in simulated seconds for requests that do
        not carry their own (``None`` = no timeout).
    max_attempts:
        Execution attempts per request (2 = the contract's
        retry-once-on-failure).
    cache_hit_latency:
        Simulated seconds charged to a cache hit (index lookup cost).
    groupby:
        Apply the GroupBy rules to the pending pool when forming
        batches; off, batches are FIFO chunks (the random baseline).
    return_depths:
        Attach full depth rows to ``"bfs"`` responses.
    partitions:
        When positive, batches traverse the
        :class:`~repro.dist.engine.PartitionedEngine` over this many
        graph partitions instead of the whole-graph engine — the path
        for graphs too big for a single device.  Depths stay
        bit-identical; only the execution substrate (and the exchange
        metrics it emits) changes.  Incompatible with ``executor``.
    partition_layout:
        Partition layout (``"1d"`` or ``"2d"``) when ``partitions > 0``.
    """

    batch_size: int = 32
    flush_deadline: float = 2e-5
    queue_capacity: int = 256
    cache_capacity: int = 4096
    plan_cache_capacity: int = 256
    num_devices: int = 1
    default_timeout: Optional[float] = None
    max_attempts: int = 2
    cache_hit_latency: float = 1e-7
    groupby: bool = True
    return_depths: bool = False
    partitions: int = 0
    partition_layout: str = "1d"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ServiceError("batch_size must be positive")
        if self.flush_deadline <= 0:
            raise ServiceError("flush_deadline must be positive")
        if self.queue_capacity <= 0:
            raise ServiceError("queue_capacity must be positive")
        if self.cache_capacity < 0:
            raise ServiceError("cache_capacity must be non-negative")
        if self.plan_cache_capacity < 0:
            raise ServiceError("plan_cache_capacity must be non-negative")
        if self.num_devices <= 0:
            raise ServiceError("num_devices must be positive")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ServiceError("default_timeout must be positive when given")
        if self.max_attempts <= 0:
            raise ServiceError("max_attempts must be positive")
        if self.cache_hit_latency < 0:
            raise ServiceError("cache_hit_latency must be non-negative")
        if self.partitions < 0:
            raise ServiceError("partitions must be non-negative")
        if self.partition_layout not in ("1d", "2d"):
            raise ServiceError(
                f"unknown partition_layout {self.partition_layout!r}; "
                f"expected '1d' or '2d'"
            )


class BFSServer:
    """Online serving front-end over one graph and one engine config."""

    def __init__(
        self,
        graph: CSRGraph,
        serving: Optional[ServingConfig] = None,
        engine_config: Optional[IBFSConfig] = None,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        groupby_config: Optional[GroupByConfig] = None,
        fault_injector: Optional[Callable[[Sequence[int]], None]] = None,
        executor: Optional["GroupExecutor"] = None,
        planner: Optional[Policy] = None,
        slo: Optional["SLOEngine"] = None,
        substrate: Optional[SubstrateSpec] = None,
    ) -> None:
        self.graph = graph
        self.serving = serving or ServingConfig()
        engine_config = engine_config or IBFSConfig(
            group_size=self.serving.batch_size
        )
        #: The placement decision.  An explicit spec wins; otherwise the
        #: legacy knobs remain aliases — ``serving.partitions`` selects
        #: the partitioned substrate, a caller-owned ``executor`` the
        #: executor substrate, and the bare default is serial.
        if substrate is None:
            substrate = SubstrateSpec.from_flags(
                kind="executor" if (
                    executor is not None and self.serving.partitions == 0
                ) else None,
                partitions=self.serving.partitions,
                layout=self.serving.partition_layout,
            )
        self.substrate_spec = substrate
        if executor is not None and substrate.kind == "executor":
            # An executor over a different graph or engine config would
            # compute depths the server's cache keys misattribute.
            self._check_executor(executor, engine_config, planner)
        #: The one execution substrate every batch dispatches through —
        #: serial engine, worker-process executor, partitioned engine,
        #: or the epoch-swapping stream wrapper.  Bit-identical depths
        #: on all of them; only placement (and the metrics it emits)
        #: changes.  Construction and capability validation live in
        #: :func:`repro.runtime.make_substrate`.
        self.substrate = make_substrate(
            substrate,
            graph,
            engine_config=engine_config,
            device=device,
            policy=policy,
            planner=planner,
            executor=executor,
        )
        #: Effective max batch size (configured, clamped by capacity).
        self.batch_size = min(
            self.serving.batch_size,
            self.substrate.effective_group_size(),
        )
        self.batcher = MicroBatcher(
            graph,
            self.batch_size,
            self.serving.flush_deadline,
            groupby=self.serving.groupby,
            groupby_config=groupby_config,
        )
        self.cache = ResultCache(self.serving.cache_capacity)
        self.plan_cache = PlanCache(self.serving.plan_cache_capacity)
        self.metrics = MetricsRegistry()
        #: Optional :class:`~repro.obs.slo.SLOEngine`: when given, the
        #: server feeds it wave latency, per-response error, and queue
        #: depth samples on the simulated clock and evaluates specs
        #: after each sample — alerts land on the engine (and its hub)
        #: and in :meth:`metrics_snapshot`.  ``None`` keeps the serving
        #: hot path free of SLO work.
        self.slo = slo
        #: Test/chaos hook: called with the batch sources before each
        #: kernel; raising a ReproError fails the batch.
        self.fault_injector = fault_injector

        self.clock = 0.0
        self._graph_id = graph_cache_id(graph)
        self._engine_key = self.substrate.engine_key
        self._device_free = [0.0] * self.serving.num_devices
        self._completed: List[Response] = []
        self._next_id = 0
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    # Back-compat views of the substrate's internals
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The substrate's engine (read-only back-compat view)."""
        return self.substrate.engine

    @property
    def partitioned(self):
        """The PartitionedEngine when this server partitions, else None
        (read-only back-compat view)."""
        return self.substrate.partitioned_engine

    @property
    def executor(self):
        """The GroupExecutor when this server pools workers, else None
        (read-only back-compat view)."""
        return self.substrate.executor

    def _check_executor(
        self,
        executor: "GroupExecutor",
        engine_config: IBFSConfig,
        planner: Optional[Policy],
    ) -> None:
        """An executor over a different graph or engine configuration
        would compute depths the server's cache keys misattribute —
        refuse it up front."""
        if graph_cache_id(executor.graph) != graph_cache_id(self.graph):
            raise ServiceError(
                "executor graph does not match the server graph"
            )
        if substrate_engine_key(
            executor.engine.config, executor.engine.planner.name
        ) != substrate_engine_key(
            engine_config, planner_cache_name(planner)
        ):
            raise ServiceError(
                "executor engine config does not match the server's; "
                "batches would traverse under a different configuration "
                "than responses are cached and keyed for"
            )

    def close(self) -> None:
        """Release the substrate's owned resources (a caller-owned
        ``executor`` is left alone)."""
        self.substrate.close()

    def __enter__(self) -> "BFSServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, request: Request, arrival_time: Optional[float] = None) -> int:
        """Admit one request; returns its id.

        ``arrival_time`` is the simulated arrival (default: the current
        clock); arrivals must be non-decreasing.  Raises
        :class:`~repro.errors.QueueFullError` when the pending queue is
        at capacity and :class:`~repro.errors.ServiceError` for
        malformed requests.
        """
        now = self.clock if arrival_time is None else float(arrival_time)
        if now < self.clock:
            raise ServiceError(
                f"arrival {now} is before the server clock {self.clock}"
            )
        self._validate(request)
        self.advance_to(now)
        self.metrics.record_submit(queue_depth=len(self.batcher))
        self._observe_slo(SIGNAL_QUEUE_DEPTH, float(len(self.batcher)))

        request_id = self._next_id
        self._next_id += 1

        key = self.cache.key(
            self._graph_id, request.source, self._engine_key, request.max_depth
        )
        row = self.cache.get(key)
        if row is not None:
            latency = self.serving.cache_hit_latency
            self._finish(
                Response(
                    request_id=request_id,
                    request=request,
                    status=STATUS_OK,
                    value=self._answer(request, row),
                    completion_time=now + latency,
                    latency=latency,
                    cached=True,
                    depths=self._maybe_depths(request, row),
                )
            )
            return request_id

        if len(self.batcher) >= self.serving.queue_capacity:
            self.metrics.shed += 1
            raise QueueFullError(
                f"pending queue at capacity "
                f"({self.serving.queue_capacity}); request shed"
            )
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.serving.default_timeout
        )
        deadline = now + timeout if timeout is not None else float("inf")
        self.batcher.add(
            PendingRequest(
                request_id=request_id,
                request=request,
                arrival_time=now,
                deadline=deadline,
            )
        )
        self._dispatch(self.clock)
        return request_id

    def take_completed(self) -> List[Response]:
        """Responses finished since the last call, in completion order."""
        done, self._completed = self._completed, []
        return done

    def drain(self) -> List[Response]:
        """Flush everything pending (ignoring deadlines) and return all
        completed responses; the clock advances to the last completion."""
        while len(self.batcher) > 0:
            free = min(self._device_free)
            self.clock = max(self.clock, free)
            self._dispatch(self.clock, draining=True)
        self.clock = max(self.clock, max(self._device_free))
        return self.take_completed()

    # ------------------------------------------------------------------
    # Simulated-time machinery
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance the clock to the next internal flush event and
        process it; returns False when nothing is pending."""
        event = self._next_event()
        if event is None:
            return False
        self.clock = max(self.clock, event)
        self._dispatch(self.clock)
        return True

    def advance_to(self, t: float) -> None:
        """Process every flush that triggers at or before time ``t``."""
        while True:
            event = self._next_event()
            if event is None or event > t:
                break
            self.clock = max(self.clock, event)
            self._dispatch(self.clock)
        self.clock = max(self.clock, t)

    def _next_event(self) -> Optional[float]:
        """Earliest simulated time a batch can launch; None when idle."""
        if len(self.batcher) == 0:
            return None
        free = min(self._device_free)
        if self.batcher.size_ready():
            return max(self.clock, free)
        deadline = self.batcher.deadline_at()
        expiry = min(p.deadline for p in self.batcher.pending)
        return max(min(deadline, expiry), free)

    def _dispatch(self, now: float, draining: bool = False) -> None:
        """Launch batches while a device is free and a trigger holds."""
        if self.substrate.supports_executor:
            self._dispatch_wave(now, draining)
            return
        self._expire(now)
        while len(self.batcher) > 0:
            device = int(np.argmin(self._device_free))
            if self._device_free[device] > now:
                break
            if self.batcher.size_ready():
                trigger = "size"
            elif self.batcher.deadline_ready(now):
                trigger = "deadline"
            elif draining:
                trigger = "drain"
            else:
                break
            self._launch(device, now, trigger)
            self._expire(now)

    def _dispatch_wave(self, now: float, draining: bool = False) -> None:
        """Executor-backed dispatch: every batch that becomes launchable
        at this instant (one per free device) executes as one concurrent
        wave on the worker pool, then bookkeeping applies in formation
        order — so batch ids, cache puts, responses, and metrics are
        bit-identical to the inline path."""
        self._expire(now)
        while True:
            queue_depth = len(self.batcher)
            wave = []
            progressed = False
            while len(self.batcher) > 0:
                device = int(np.argmin(self._device_free))
                if self._device_free[device] > now:
                    break
                if self.batcher.size_ready():
                    trigger = "size"
                elif self.batcher.deadline_ready(now):
                    trigger = "deadline"
                elif draining:
                    trigger = "drain"
                else:
                    break
                sources, batch = self.batcher.take_batch()
                for item in batch:
                    item.attempts += 1
                max_depth = batch[0].max_depth
                # The chaos hook runs in the parent *during* formation so
                # a failed batch's retries rejoin the pool before the
                # next batch forms — exactly the inline ordering.
                if self.fault_injector is not None:
                    try:
                        self.fault_injector(sources)
                    except ReproError as exc:
                        self._handle_failure(batch, exc)
                        self._expire(now)
                        progressed = True
                        continue
                prior_free = self._device_free[device]
                # Provisionally busy until the wave resolves.
                self._device_free[device] = float("inf")
                wave.append(
                    (device, prior_free, sources, batch, trigger, max_depth)
                )
                self._expire(now)
            if not wave:
                if not progressed:
                    return
                continue
            specs = [
                (
                    entry[2],
                    entry[5],
                    self.plan_cache.get(self._plan_key(entry[2], entry[5])),
                )
                for entry in wave
            ]
            with obs_tracing.get_tracer().span(
                "serve.wave",
                substrate=self.substrate.telemetry_kind,
                batches=len(wave),
                sources=sum(len(entry[2]) for entry in wave),
                plans_cached=sum(1 for s in specs if s[2] is not None),
                queue_depth=queue_depth,
            ) as wave_span:
                results = self.substrate.map_groups(specs, return_errors=True)
                sims = [
                    r.seconds for r in results
                    if not isinstance(r, ReproError)
                ]
                if wave_span is not None and sims:
                    # The wave's simulated makespan (devices run the
                    # batches concurrently); see the inline-path note.
                    wave_span.annotate(sim_seconds=max(sims))
            for entry, result in zip(wave, results):
                device, prior_free, sources, batch, trigger, max_depth = entry
                if isinstance(result, ReproError):
                    self._device_free[device] = prior_free
                    self._handle_failure(batch, result)
                    continue
                self._commit_batch(
                    device, now, trigger, sources, batch, max_depth, result
                )
            self._expire(now)

    def _expire(self, now: float) -> None:
        """Time out requests whose deadline passed while still queued."""
        for item in list(self.batcher.pending):
            if item.deadline <= now:
                self.batcher.drop(item)
                self.metrics.timeouts += 1
                self._finish(
                    Response(
                        request_id=item.request_id,
                        request=item.request,
                        status=STATUS_TIMEOUT,
                        completion_time=item.deadline,
                        latency=item.deadline - item.arrival_time,
                        attempts=item.attempts + 1,
                        error="timed out in queue",
                    ),
                    successful=False,
                )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _launch(self, device: int, now: float, trigger: str) -> None:
        queue_depth = len(self.batcher)
        sources, batch = self.batcher.take_batch()
        for item in batch:
            item.attempts += 1
        max_depth = batch[0].max_depth

        try:
            with obs_tracing.get_tracer().span(
                "serve.batch",
                substrate=self.substrate.telemetry_kind,
                device=device,
                trigger=trigger,
                num_sources=len(sources),
                num_requests=len(batch),
                queue_depth=queue_depth,
            ) as span:
                if self.fault_injector is not None:
                    self.fault_injector(sources)
                # Looked up after the chaos hook so a fault-failed batch
                # touches the plan cache exactly as the wave path does.
                plan = self.plan_cache.get(self._plan_key(sources, max_depth))
                if span is not None:
                    span.annotate(plan_cached=plan is not None)
                result = self.substrate.run_group(
                    sources, max_depth=max_depth, plan=plan
                )
                if span is not None:
                    # Simulated wave cost, so SLO replay from the trace
                    # sees the same latency signal the live engine did
                    # (span start/end are wall clock, not simulated).
                    span.annotate(sim_seconds=result.seconds)
        except ReproError as exc:
            self._handle_failure(batch, exc)
            return
        self._commit_batch(device, now, trigger, sources, batch, max_depth, result)

    def _commit_batch(
        self,
        device: int,
        now: float,
        trigger: str,
        sources: Sequence[int],
        batch: List[PendingRequest],
        max_depth: Optional[int],
        result,
    ) -> None:
        """Apply one successful batch's bookkeeping: clocks, metrics,
        cache population, and per-request responses."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        completion = now + result.seconds
        self._device_free[device] = completion
        stats = result.groups[0]
        self.metrics.record_batch(
            BatchRecord(
                batch_id=batch_id,
                launch_time=now,
                seconds=result.seconds,
                num_requests=len(batch),
                num_sources=len(sources),
                batch_limit=self.batch_size,
                sharing_degree=stats.sharing_degree,
                trigger=trigger,
            )
        )
        self._observe_slo(SIGNAL_WAVE_LATENCY, result.seconds)

        if stats.plan is not None:
            self.plan_cache.put(
                self._plan_key(sources, max_depth), stats.plan
            )

        rows = {s: result.depths[i] for i, s in enumerate(sources)}
        for source, row in rows.items():
            self.cache.put(
                self.cache.key(
                    self._graph_id, source, self._engine_key, max_depth
                ),
                row,
            )
        for item in batch:
            row = rows[item.source]
            if completion > item.deadline:
                self.metrics.timeouts += 1
                self._finish(
                    Response(
                        request_id=item.request_id,
                        request=item.request,
                        status=STATUS_TIMEOUT,
                        completion_time=completion,
                        latency=completion - item.arrival_time,
                        batch_id=batch_id,
                        attempts=item.attempts,
                        error="deadline exceeded during execution",
                    ),
                    successful=False,
                )
                continue
            self._finish(
                Response(
                    request_id=item.request_id,
                    request=item.request,
                    status=STATUS_OK,
                    value=self._answer(item.request, row),
                    completion_time=completion,
                    latency=completion - item.arrival_time,
                    batch_id=batch_id,
                    attempts=item.attempts,
                    depths=self._maybe_depths(item.request, row),
                )
            )

    def _handle_failure(
        self, batch: List[PendingRequest], exc: ReproError
    ) -> None:
        """Retry each request once; fail those out of attempts."""
        retry: List[PendingRequest] = []
        for item in batch:
            if item.attempts < self.serving.max_attempts:
                self.metrics.retries += 1
                retry.append(item)
            else:
                self.metrics.failures += 1
                self._finish(
                    Response(
                        request_id=item.request_id,
                        request=item.request,
                        status=STATUS_FAILED,
                        completion_time=self.clock,
                        latency=self.clock - item.arrival_time,
                        attempts=item.attempts,
                        error=str(exc),
                    ),
                    successful=False,
                )
        # Requeue at the head, oldest first, so the retry batch flushes
        # before newer traffic.
        for item in sorted(retry, key=lambda p: p.arrival_time, reverse=True):
            self.batcher._pending.insert(0, item)

    # ------------------------------------------------------------------
    # Answers and bookkeeping
    # ------------------------------------------------------------------
    def _plan_key(self, sources: Sequence[int], max_depth: Optional[int]):
        return PlanCache.key(
            self._graph_id, sources, self._engine_key, max_depth
        )

    def _validate(self, request: Request) -> None:
        n = self.graph.num_vertices
        if not 0 <= request.source < n:
            raise ServiceError(f"source {request.source} out of range [0, {n})")
        if request.target is not None and not 0 <= request.target < n:
            raise ServiceError(f"target {request.target} out of range [0, {n})")

    def _answer(self, request: Request, row: np.ndarray) -> float:
        if request.kind == "reachability":
            return float(row[request.target])
        if request.kind == "closeness":
            reached_mask = row > 0
            reached = int(np.count_nonzero(reached_mask))
            total = int(row[reached_mask].sum())
            n = self.graph.num_vertices
            if reached == 0 or total == 0 or n <= 1:
                return 0.0
            return (reached / (n - 1)) * (reached / total)
        return float(np.count_nonzero(row >= 0))

    def _maybe_depths(
        self, request: Request, row: np.ndarray
    ) -> Optional[np.ndarray]:
        if self.serving.return_depths and request.kind == "bfs":
            return row
        return None

    def _finish(self, response: Response, successful: bool = True) -> None:
        if successful:
            self.metrics.record_completion(response.latency, response.cached)
        self._observe_slo(
            SIGNAL_ERROR_RATE, 0.0 if successful else 1.0
        )
        self._completed.append(response)

    def _observe_slo(self, signal: str, value: float) -> None:
        """Feed one SLO sample at the server clock and re-evaluate.

        Samples ride the simulated clock (arrival/launch instants are
        non-decreasing even when completions land in the future), so
        burn rates and alert times are bit-reproducible per run.
        """
        if self.slo is None:
            return
        self.slo.observe(signal, value, self.clock)
        self.slo.evaluate(self.clock)

    def metrics_snapshot(self, elapsed: Optional[float] = None) -> dict:
        """Metrics JSON payload including cache statistics."""
        if elapsed is None:
            elapsed = self.clock
        payload = self.metrics.snapshot(
            elapsed=elapsed, cache_stats=self.cache.stats()
        )
        payload["plan_cache"] = self.plan_cache.stats()
        payload["substrate"] = self.substrate.describe()
        if self.slo is not None:
            self.slo.evaluate(self.clock)
            payload["slo"] = self.slo.snapshot()
        return payload


class InProcessClient:
    """Synchronous convenience client: each call submits one request at
    the server's current clock and drains it to completion."""

    def __init__(self, server: BFSServer) -> None:
        self.server = server

    def _ask(self, request: Request) -> Response:
        request_id = self.server.submit(request)
        for response in self.server.drain():
            if response.request_id == request_id:
                return response
        raise ServiceError(f"request {request_id} produced no response")

    def bfs(self, source: int, max_depth: Optional[int] = None) -> Response:
        return self._ask(Request(source=source, kind="bfs", max_depth=max_depth))

    def reachable(
        self, source: int, target: int, k: Optional[int] = None
    ) -> bool:
        response = self._ask(
            Request(source=source, kind="reachability", target=target,
                    max_depth=k)
        )
        if not response.ok:
            raise ServiceError(response.error or "reachability query failed")
        return response.value >= 0

    def closeness(self, source: int) -> float:
        response = self._ask(Request(source=source, kind="closeness"))
        if not response.ok:
            raise ServiceError(response.error or "closeness query failed")
        return float(response.value)
