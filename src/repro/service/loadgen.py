"""Closed-loop load generation for the serving layer.

Models the workload an online graph service actually sees: a fixed
fleet of clients, each keeping one request in flight (closed loop —
issue, wait, think, reissue), with sources drawn from a Zipf
distribution over vertices ranked by outdegree.  The rank-by-degree
choice makes the popularity skew line up with the structural skew of
power-law graphs: hot queries hit hub vertices, which is both where
the cache earns its keep and where GroupBy finds shared frontiers.

The generator co-simulates with :class:`~repro.service.server.BFSServer`
in simulated time, so a (graph, workload, config) triple is fully
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.errors import QueueFullError, ServiceError
from repro.graph.csr import CSRGraph
from repro.service.request import Request, Response
from repro.service.server import BFSServer, ServingConfig


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the generated request stream."""

    #: Total requests the clients issue.
    num_requests: int = 512
    #: Concurrent closed-loop clients.
    num_clients: int = 32
    #: Zipf exponent of source popularity (higher = more skew; the
    #: classic web-trace value is ~1).
    zipf_exponent: float = 1.1
    #: Request kind issued by every client.
    kind: str = "bfs"
    #: Depth limit carried by every request.
    max_depth: Optional[int] = None
    #: Simulated seconds a client waits between completion and reissue.
    think_time: float = 0.0
    #: Client backoff after a shed (queue-full) submission.
    shed_backoff: float = 5e-5
    #: Seed for source sampling.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ServiceError("num_requests must be positive")
        if self.num_clients <= 0:
            raise ServiceError("num_clients must be positive")
        if self.zipf_exponent < 0:
            raise ServiceError("zipf_exponent must be non-negative")
        if self.think_time < 0:
            raise ServiceError("think_time must be non-negative")
        if self.shed_backoff <= 0:
            raise ServiceError("shed_backoff must be positive")


@dataclass
class LoadResult:
    """Outcome of one closed-loop run against one server."""

    #: Requests successfully answered (ok status, incl. cache hits).
    completed: int
    #: Requests shed by admission control.
    shed: int
    #: Requests that timed out or failed.
    errored: int
    #: Simulated seconds from first arrival to last completion.
    elapsed: float
    #: Completed requests per simulated second.
    throughput: float
    #: Full metrics snapshot (includes cache stats).
    metrics: dict
    #: Every terminal response, in completion order.
    responses: List[Response] = field(default_factory=list)


def sample_sources(
    graph: CSRGraph, count: int, zipf_exponent: float, seed: int = 0
) -> List[int]:
    """Draw ``count`` sources Zipf-distributed over degree rank.

    Vertex popularity follows ``(rank + 1) ** -s`` with vertices ranked
    by descending outdegree, so the hottest sources are the hubs.
    ``s = 0`` degenerates to uniform.
    """
    degrees = graph.out_degrees()
    ranked = np.argsort(-degrees, kind="stable")
    weights = (np.arange(1, graph.num_vertices + 1, dtype=np.float64)
               ** -float(zipf_exponent))
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(graph.num_vertices, size=count, p=weights)
    return [int(ranked[i]) for i in picks]


def run_closed_loop(server: BFSServer, workload: WorkloadConfig) -> LoadResult:
    """Drive ``server`` with closed-loop clients; returns aggregates.

    Each client keeps exactly one request outstanding.  The simulation
    interleaves client issue events with the server's internal flush
    events, so batch formation sees exactly the concurrency a real
    deployment would.
    """
    sources = sample_sources(
        server.graph,
        workload.num_requests,
        workload.zipf_exponent,
        workload.seed,
    )
    tiebreak = itertools.count()
    issue_events: List[tuple] = []
    for client in range(min(workload.num_clients, workload.num_requests)):
        heapq.heappush(issue_events, (0.0, next(tiebreak), client))

    owners: Dict[int, int] = {}
    responses: List[Response] = []
    issued = 0
    shed = 0
    start_clock = server.clock

    def collect() -> None:
        for response in server.take_completed():
            responses.append(response)
            client = owners.pop(response.request_id)
            if issued < workload.num_requests or owners or issue_events:
                heapq.heappush(
                    issue_events,
                    (
                        response.completion_time + workload.think_time,
                        next(tiebreak),
                        client,
                    ),
                )

    while issued < workload.num_requests or owners:
        if issue_events and issued < workload.num_requests:
            at, _, client = heapq.heappop(issue_events)
            at = max(at, server.clock)
            request = Request(
                source=sources[issued],
                kind=workload.kind,
                max_depth=workload.max_depth,
            )
            try:
                request_id = server.submit(request, arrival_time=at)
            except QueueFullError:
                shed += 1
                issued += 1
                heapq.heappush(
                    issue_events,
                    (at + workload.shed_backoff, next(tiebreak), client),
                )
                collect()
                continue
            owners[request_id] = client
            issued += 1
            collect()
        elif owners:
            # All clients are waiting: let the server reach its next
            # flush (deadline or freed device).
            if not server.step():
                server.drain()
            collect()
        else:
            break

    server.drain()
    collect()

    elapsed = server.clock - start_clock
    completed = sum(1 for r in responses if r.ok)
    errored = sum(1 for r in responses if not r.ok)
    return LoadResult(
        completed=completed,
        shed=shed,
        errored=errored,
        elapsed=elapsed,
        throughput=completed / elapsed if elapsed > 0 else 0.0,
        metrics=server.metrics_snapshot(elapsed=elapsed),
        responses=responses,
    )


def naive_config(serving: ServingConfig) -> ServingConfig:
    """The one-request-one-traversal baseline: no batching, no cache,
    no grouping — every request is its own kernel launch."""
    return replace(
        serving,
        batch_size=1,
        cache_capacity=0,
        groupby=False,
    )


def compare_serving(
    graph: CSRGraph,
    workload: WorkloadConfig,
    serving: Optional[ServingConfig] = None,
    planner=None,
) -> dict:
    """Run the same workload through micro-batched and naive serving.

    Returns ``{"batched": LoadResult, "naive": LoadResult,
    "speedup": float}`` where speedup is the throughput ratio.
    ``planner`` is an optional :class:`~repro.plan.policy.Policy` both
    servers traverse under.
    """
    serving = serving or ServingConfig()
    batched = run_closed_loop(
        BFSServer(graph, serving, planner=planner), workload
    )
    naive = run_closed_loop(
        BFSServer(graph, naive_config(serving), planner=planner), workload
    )
    speedup = (
        batched.throughput / naive.throughput if naive.throughput > 0 else 0.0
    )
    return {"batched": batched, "naive": naive, "speedup": speedup}
