"""Serving metrics registry.

Records what a production BFS service would export: request counts by
outcome, latency percentiles, batch occupancy and realized sharing
degree (the paper's figure 6 metric, observed per served batch), cache
effectiveness, and queue depth.  Everything is a plain counter or a
bounded reservoir over simulated seconds, so snapshots are
deterministic and JSON-serializable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile(
    values: Sequence[float], q: float, presorted: bool = False
) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); 0.0 if empty.

    Pass ``presorted=True`` when ``values`` is already in ascending
    order — callers that need several percentiles of the same reservoir
    sort it once instead of once per quantile.  ``values`` is never
    mutated either way.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = values if presorted else sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass
class BatchRecord:
    """One executed batch (one joint kernel launch)."""

    batch_id: int
    launch_time: float
    seconds: float
    #: Requests served by the batch (>= num_sources when coalesced).
    num_requests: int
    #: Distinct traversal sources in the batch.
    num_sources: int
    #: Configured max batch size at launch.
    batch_limit: int
    #: Realized sharing degree of the joint kernel.
    sharing_degree: float
    #: Why the batch flushed: ``"size"``, ``"deadline"``, or ``"drain"``.
    trigger: str = "size"

    @property
    def occupancy(self) -> float:
        """Fill fraction of the batch slot, in (0, 1]."""
        return self.num_sources / self.batch_limit if self.batch_limit else 0.0


@dataclass
class MetricsRegistry:
    """Accumulates serving metrics; snapshot with :meth:`snapshot`."""

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    timeouts: int = 0
    failures: int = 0
    retries: int = 0
    latencies: List[float] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    queue_depths: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        self.submitted += 1
        self.queue_depths.append(queue_depth)

    def record_completion(self, latency: float, cached: bool) -> None:
        self.completed += 1
        if cached:
            self.cache_hits += 1
        self.latencies.append(latency)

    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> Dict[str, float]:
        # One sort covers every quantile; the recorded reservoir keeps
        # its completion order (it is a log, not a scratch buffer).
        ordered = sorted(self.latencies)
        return {
            "p50": percentile(ordered, 50.0, presorted=True),
            "p90": percentile(ordered, 90.0, presorted=True),
            "p99": percentile(ordered, 99.0, presorted=True),
            "mean": (
                sum(ordered) / len(ordered)
                if ordered
                else 0.0
            ),
            "max": ordered[-1] if ordered else 0.0,
        }

    @property
    def mean_occupancy(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.occupancy for b in self.batches) / len(self.batches)

    @property
    def mean_sharing_degree(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.sharing_degree for b in self.batches) / len(self.batches)

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depths:
            return 0.0
        return sum(self.queue_depths) / len(self.queue_depths)

    def throughput(self, elapsed: float) -> float:
        """Completed requests per simulated second over ``elapsed``."""
        return self.completed / elapsed if elapsed > 0 else 0.0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(
        self, elapsed: Optional[float] = None, cache_stats: Optional[dict] = None
    ) -> dict:
        """JSON-serializable summary of everything recorded so far."""
        flush_triggers: Dict[str, int] = {}
        for batch in self.batches:
            flush_triggers[batch.trigger] = flush_triggers.get(batch.trigger, 0) + 1
        payload = {
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "failures": self.failures,
                "retries": self.retries,
            },
            "latency_seconds": self.latency_percentiles(),
            "batches": {
                "count": len(self.batches),
                "mean_occupancy": self.mean_occupancy,
                "mean_sharing_degree": self.mean_sharing_degree,
                "flush_triggers": flush_triggers,
                "mean_requests_per_batch": (
                    sum(b.num_requests for b in self.batches) / len(self.batches)
                    if self.batches
                    else 0.0
                ),
            },
            "queue": {
                "mean_depth": self.mean_queue_depth,
                "max_depth": max(self.queue_depths) if self.queue_depths else 0,
            },
        }
        if elapsed is not None:
            payload["elapsed_seconds"] = elapsed
            payload["requests_per_second"] = self.throughput(elapsed)
        if cache_stats is not None:
            payload["cache"] = dict(cache_stats)
        return payload

    def to_json(self, elapsed: Optional[float] = None,
                cache_stats: Optional[dict] = None, indent: int = 2) -> str:
        return json.dumps(
            self.snapshot(elapsed=elapsed, cache_stats=cache_stats),
            indent=indent,
        )
