"""Serving metrics registry.

Records what a production BFS service would export: request counts by
outcome, latency percentiles, batch occupancy and realized sharing
degree (the paper's figure 6 metric, observed per served batch), cache
effectiveness, and queue depth.  Everything is a plain counter or a
bounded reservoir over simulated seconds, so snapshots are
deterministic and JSON-serializable.

Latency distribution math routes through
:class:`repro.obs.metrics.Histogram` — the same fixed bucket
boundaries and the same percentile implementation the executor's task
wall-clock distribution uses — so serving and exec latencies are
directly comparable.  :func:`repro.obs.metrics.percentile` is
re-exported here for backward compatibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsHub,
    get_hub,
    percentile,
)

__all__ = ["BatchRecord", "MetricsRegistry", "percentile"]


@dataclass
class BatchRecord:
    """One executed batch (one joint kernel launch)."""

    batch_id: int
    launch_time: float
    seconds: float
    #: Requests served by the batch (>= num_sources when coalesced).
    num_requests: int
    #: Distinct traversal sources in the batch.
    num_sources: int
    #: Configured max batch size at launch.
    batch_limit: int
    #: Realized sharing degree of the joint kernel.
    sharing_degree: float
    #: Why the batch flushed: ``"size"``, ``"deadline"``, or ``"drain"``.
    trigger: str = "size"

    @property
    def occupancy(self) -> float:
        """Fill fraction of the batch slot, in (0, 1]."""
        return self.num_sources / self.batch_limit if self.batch_limit else 0.0


@dataclass
class MetricsRegistry:
    """Accumulates serving metrics; snapshot with :meth:`snapshot`."""

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    timeouts: int = 0
    failures: int = 0
    retries: int = 0
    latencies: List[float] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    queue_depths: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        #: Fixed-bucket latency distribution (simulated seconds); the
        #: same bucket boundaries as ``exec_task_wall_seconds``, so the
        #: two histograms diff bucket by bucket.
        self.latency_histogram = Histogram(
            "serving_latency_seconds",
            "Per-request serving latency (simulated seconds)",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        self.submitted += 1
        self.queue_depths.append(queue_depth)

    def record_completion(self, latency: float, cached: bool) -> None:
        self.completed += 1
        if cached:
            self.cache_hits += 1
        self.latencies.append(latency)
        self.latency_histogram.observe(latency)

    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> Dict[str, float]:
        # One sort covers every quantile; the histogram's retained
        # reservoir keeps completion order (it is a log, not a scratch
        # buffer) and the quantile math is obs.metrics' — shared with
        # every other latency distribution in the system.
        hist = self.latency_histogram
        quantiles = hist.quantiles((50.0, 90.0, 99.0))
        return {
            "p50": quantiles[50.0],
            "p90": quantiles[90.0],
            "p99": quantiles[99.0],
            "mean": hist.mean,
            "max": hist.max,
        }

    @property
    def mean_occupancy(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.occupancy for b in self.batches) / len(self.batches)

    @property
    def mean_sharing_degree(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.sharing_degree for b in self.batches) / len(self.batches)

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depths:
            return 0.0
        return sum(self.queue_depths) / len(self.queue_depths)

    def throughput(self, elapsed: float) -> float:
        """Completed requests per simulated second over ``elapsed``."""
        return self.completed / elapsed if elapsed > 0 else 0.0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(
        self, elapsed: Optional[float] = None, cache_stats: Optional[dict] = None
    ) -> dict:
        """JSON-serializable summary of everything recorded so far."""
        flush_triggers: Dict[str, int] = {}
        for batch in self.batches:
            flush_triggers[batch.trigger] = flush_triggers.get(batch.trigger, 0) + 1
        payload = {
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "failures": self.failures,
                "retries": self.retries,
            },
            "latency_seconds": self.latency_percentiles(),
            "batches": {
                "count": len(self.batches),
                "mean_occupancy": self.mean_occupancy,
                "mean_sharing_degree": self.mean_sharing_degree,
                "flush_triggers": flush_triggers,
                "mean_requests_per_batch": (
                    sum(b.num_requests for b in self.batches) / len(self.batches)
                    if self.batches
                    else 0.0
                ),
            },
            "queue": {
                "mean_depth": self.mean_queue_depth,
                "max_depth": max(self.queue_depths) if self.queue_depths else 0,
            },
        }
        if elapsed is not None:
            payload["elapsed_seconds"] = elapsed
            payload["requests_per_second"] = self.throughput(elapsed)
        if cache_stats is not None:
            payload["cache"] = dict(cache_stats)
        return payload

    def publish(self, hub: Optional[MetricsHub] = None) -> None:
        """Register this registry's state into the process-wide hub so
        one exporter (Prometheus text, trace JSONL) covers serving.

        Counts are exported as gauges (they are totals-so-far, not
        increments, so republishing after more traffic just refreshes
        them); the latency histogram is adopted wholesale.
        """
        # Explicit None test: an empty MetricsHub is falsy (len 0).
        hub = hub if hub is not None else get_hub()
        totals = (
            ("serving_requests_submitted", "Requests admitted", self.submitted),
            ("serving_requests_completed", "Requests completed", self.completed),
            ("serving_cache_hits", "Requests answered from cache",
             self.cache_hits),
            ("serving_requests_shed", "Requests shed by backpressure",
             self.shed),
            ("serving_requests_timeout", "Requests timed out", self.timeouts),
            ("serving_requests_failed", "Requests failed", self.failures),
            ("serving_retries", "Request retries", self.retries),
            ("serving_batches", "Batches executed", len(self.batches)),
            ("serving_mean_occupancy", "Mean batch occupancy",
             self.mean_occupancy),
            ("serving_mean_sharing_degree",
             "Mean realized sharing degree per batch",
             self.mean_sharing_degree),
            ("serving_mean_queue_depth", "Mean pending-queue depth",
             self.mean_queue_depth),
        )
        for name, help_text, value in totals:
            hub.gauge(name, help_text).set(float(value))
        if hub.get(self.latency_histogram.name) is None:
            hub.register(self.latency_histogram)

    def to_json(self, elapsed: Optional[float] = None,
                cache_stats: Optional[dict] = None, indent: int = 2) -> str:
        return json.dumps(
            self.snapshot(elapsed=elapsed, cache_stats=cache_stats),
            indent=indent,
        )
