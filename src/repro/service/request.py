"""Request/response model of the online serving layer.

A :class:`Request` is one client question about one source vertex —
the unit the paper batches ``i`` of.  Three kinds are served, matching
the applications of section 8:

* ``"bfs"`` — full (or depth-limited) BFS from ``source``; the answer
  is the number of reached vertices and, on demand, the depth row;
* ``"reachability"`` — is ``target`` within ``max_depth`` hops of
  ``source`` (the Table 1 k-hop query); the answer is the depth of the
  target, or -1;
* ``"closeness"`` — Wasserman–Faust closeness centrality of
  ``source`` (the section 1 application).

All timing fields are *simulated* seconds, consistent with the rest of
the repository: the server is a discrete-event system driven by
explicit arrival times, so identical request streams produce
bit-identical latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ServiceError

#: Request kinds the server understands.
REQUEST_KINDS = ("bfs", "reachability", "closeness")

#: Response terminal states.
STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class Request:
    """One single-source query submitted to the server."""

    #: Source vertex of the traversal.
    source: int
    #: One of :data:`REQUEST_KINDS`.
    kind: str = "bfs"
    #: Target vertex (``"reachability"`` only).
    target: Optional[int] = None
    #: Depth limit; ``None`` traverses to exhaustion.  ``"closeness"``
    #: requires ``None`` (the score needs the full depth row).
    max_depth: Optional[int] = None
    #: Per-request timeout in simulated seconds (``None`` = server
    #: default; 0 or negative is rejected).
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {self.kind!r}; expected one of "
                f"{REQUEST_KINDS}"
            )
        if self.kind == "reachability" and self.target is None:
            raise ServiceError("reachability requests need a target vertex")
        if self.kind == "closeness" and self.max_depth is not None:
            raise ServiceError(
                "closeness requires a full traversal (max_depth=None)"
            )
        if self.max_depth is not None and self.max_depth <= 0:
            raise ServiceError("max_depth must be positive when given")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError("timeout must be positive when given")


@dataclass
class Response:
    """Terminal outcome of one request."""

    #: Server-assigned id (submission order).
    request_id: int
    #: The request this answers.
    request: Request
    #: :data:`STATUS_OK`, :data:`STATUS_TIMEOUT`, or :data:`STATUS_FAILED`.
    status: str
    #: Kind-specific scalar answer (reached count / target depth /
    #: closeness score); ``None`` unless status is ``"ok"``.
    value: Optional[float] = None
    #: Simulated completion time.
    completion_time: float = 0.0
    #: Simulated seconds from arrival to completion.
    latency: float = 0.0
    #: True when the answer came from the result cache (no traversal).
    cached: bool = False
    #: Id of the batch that served this request; -1 for cache hits.
    batch_id: int = -1
    #: Execution attempts consumed (1 = first try; 2 = retried once).
    attempts: int = 1
    #: Human-readable failure detail for non-ok statuses.
    error: Optional[str] = None
    #: Full depth row (kind ``"bfs"`` with ``return_depths`` serving
    #: enabled); shared with the cache — treat as read-only.
    depths: Optional[np.ndarray] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class PendingRequest:
    """Server-internal envelope: an admitted request waiting in the pool."""

    request_id: int
    request: Request
    #: Simulated arrival time (set by the server at admission).
    arrival_time: float
    #: Effective timeout in simulated seconds (``inf`` = none).
    deadline: float = field(default=float("inf"))
    #: Execution attempts already started.
    attempts: int = 0

    @property
    def source(self) -> int:
        return self.request.source

    @property
    def max_depth(self) -> Optional[int]:
        return self.request.max_depth
