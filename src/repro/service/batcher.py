"""Dynamic micro-batching of pending BFS requests.

The paper's result that makes an online service viable is that ``i``
instances grouped by the outdegree rules run far faster jointly than
back-to-back — so the batcher's job is to turn a stream of independent
arrivals into GroupBy-formed groups.  Two triggers flush a batch:

* **size** — enough distinct pending sources to fill a group (the
  paper's N); throughput-optimal;
* **deadline** — the oldest pending request has waited
  ``flush_deadline`` simulated seconds; bounds tail latency when
  traffic is light.

At flush time the GroupBy rules of :mod:`repro.core.groupby` run over
the *whole pending pool* and the batch is the group containing the
oldest request — older requests are never starved by better-matching
newcomers, yet each batch keeps the high sharing ratio the rules were
designed for.  Repeat sources coalesce: any number of requests for the
same (source, depth limit) ride one traversal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.core.groupby import GroupByConfig, group_sources
from repro.service.request import PendingRequest


class MicroBatcher:
    """Accumulates admitted requests and forms GroupBy batches."""

    def __init__(
        self,
        graph: CSRGraph,
        batch_size: int,
        flush_deadline: float,
        groupby: bool = True,
        groupby_config: Optional[GroupByConfig] = None,
    ) -> None:
        if batch_size <= 0:
            raise ServiceError("batch_size must be positive")
        if flush_deadline <= 0:
            raise ServiceError("flush_deadline must be positive")
        self.graph = graph
        self.batch_size = batch_size
        self.flush_deadline = flush_deadline
        self.groupby = groupby
        self.groupby_config = groupby_config or GroupByConfig()
        self._pending: List[PendingRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> Tuple[PendingRequest, ...]:
        return tuple(self._pending)

    def add(self, item: PendingRequest) -> None:
        self._pending.append(item)

    # ------------------------------------------------------------------
    # Flush triggers
    # ------------------------------------------------------------------
    def _cohort(self) -> List[PendingRequest]:
        """Pending requests batchable with the oldest one (same depth
        limit — a joint kernel runs all its instances to one limit)."""
        if not self._pending:
            return []
        limit = self._pending[0].max_depth
        return [p for p in self._pending if p.max_depth == limit]

    def size_ready(self) -> bool:
        """True when the oldest request's cohort fills a batch.

        Counts *requests*, not distinct sources: repeat sources coalesce
        onto one traversal, so a pool of ``batch_size`` requests is
        worth flushing even when hot sources overlap — waiting longer
        only adds latency, not sharing.
        """
        return len(self._cohort()) >= self.batch_size

    def deadline_at(self) -> Optional[float]:
        """Simulated time the oldest request forces a flush; None if idle."""
        if not self._pending:
            return None
        return self._pending[0].arrival_time + self.flush_deadline

    def deadline_ready(self, now: float) -> bool:
        deadline = self.deadline_at()
        return deadline is not None and now >= deadline

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------
    def take_batch(self) -> Tuple[List[int], List[PendingRequest]]:
        """Remove and return one batch: (distinct sources, its requests).

        The sources are GroupBy-formed over the pending cohort; the
        selected group is the one holding the oldest request's source.
        """
        cohort = self._cohort()
        if not cohort:
            raise ServiceError("take_batch on an empty batcher")
        unique: List[int] = []
        seen = set()
        for p in cohort:
            if p.source not in seen:
                seen.add(p.source)
                unique.append(p.source)

        if self.groupby and len(unique) > 1:
            groups = group_sources(
                self.graph, unique, self.batch_size, self.groupby_config
            )
            oldest = cohort[0].source
            chosen = next(g for g in groups if oldest in g)
        else:
            chosen = unique[: self.batch_size]

        members = set(chosen)
        batch = [p for p in cohort if p.source in members]
        taken = {id(p) for p in batch}
        self._pending = [p for p in self._pending if id(p) not in taken]
        return list(chosen), batch

    def drop(self, item: PendingRequest) -> None:
        """Remove one request from the pool (timeout while queued)."""
        self._pending = [p for p in self._pending if p is not item]
