"""Delta/CSR overlay: batched edge mutations on a frozen CSR graph.

The iBFS paper traverses an immutable graph, but a production graph
service mutates while queries run.  The overlay keeps the frozen CSR
as-is and accumulates edge inserts/deletes in O(batch) delta storage;
:meth:`GraphOverlay.commit` folds the pending delta into a fresh CSR in
one vectorized pass — one fold per published epoch, no matter how many
individual mutations arrived in between.

**Compaction contract** (what the differential suite pins): folding a
batch produces *bit-identical* CSR arrays to rebuilding from scratch
with :func:`repro.graph.builders.from_edge_arrays` over the equivalent
edge list, where the equivalent list is

1. the current edges in CSR order,
2. minus **every** copy of each ``(src, dst)`` pair in the batch's
   deletes (deletes apply first within a batch),
3. plus the batch's inserted pairs appended in submission order.

Because ``from_edge_arrays`` sorts stably by source, this means each
vertex's adjacency keeps its prior edge order with inserts appended —
the paper's "preserve the edge sequence" property survives mutation.

The vertex set is fixed at construction: dynamic graphs here grow and
shrink *edges*; vertex ids are the stable keys the serving layer's
caches and the depth matrices are indexed by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import StreamError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def _as_edge_arrays(
    src, dst, num_vertices: int, what: str
) -> Tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=VERTEX_DTYPE).reshape(-1)
    dst = np.asarray(dst, dtype=VERTEX_DTYPE).reshape(-1)
    if src.shape != dst.shape:
        raise StreamError(
            f"{what}: src and dst must have equal length "
            f"({src.size} != {dst.size})"
        )
    if src.size and (
        int(src.min()) < 0
        or int(dst.min()) < 0
        or int(src.max()) >= num_vertices
        or int(dst.max()) >= num_vertices
    ):
        raise StreamError(
            f"{what}: edge endpoint out of range [0, {num_vertices})"
        )
    return src, dst


@dataclass(frozen=True)
class MutationBatch:
    """One atomic set of edge mutations (deletes apply before inserts)."""

    insert_src: np.ndarray
    insert_dst: np.ndarray
    delete_src: np.ndarray
    delete_dst: np.ndarray

    @classmethod
    def make(
        cls,
        num_vertices: int,
        inserts: Optional[Tuple] = None,
        deletes: Optional[Tuple] = None,
    ) -> "MutationBatch":
        """Build a validated batch from ``(src, dst)`` array pairs."""
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        isrc, idst = (
            _as_edge_arrays(*inserts, num_vertices, "inserts")
            if inserts is not None
            else (empty, empty)
        )
        dsrc, ddst = (
            _as_edge_arrays(*deletes, num_vertices, "deletes")
            if deletes is not None
            else (empty, empty)
        )
        return cls(isrc, idst, dsrc, ddst)

    @property
    def num_inserts(self) -> int:
        return int(self.insert_src.size)

    @property
    def num_deletes(self) -> int:
        return int(self.delete_src.size)

    @property
    def empty(self) -> bool:
        return self.num_inserts == 0 and self.num_deletes == 0

    @property
    def insert_only(self) -> bool:
        """True for the hot path: inserts can only lower BFS depths, so
        cached depth rows are repairable instead of recomputable."""
        return self.num_deletes == 0

    def __repr__(self) -> str:
        return (
            f"MutationBatch(inserts={self.num_inserts}, "
            f"deletes={self.num_deletes})"
        )


def apply_batch(graph: CSRGraph, batch: MutationBatch) -> CSRGraph:
    """Fold one batch into a fresh CSR per the compaction contract.

    Deletes remove every copy of each listed pair from the current
    edge multiset; inserts append per-source in submission order.  The
    result is bit-identical to a stable ``from_edge_arrays`` rebuild of
    the equivalent edge list, but costs one O(|E| + batch) pass with no
    O(|E| log |E|) sort.
    """
    n = graph.num_vertices
    offsets = graph.row_offsets
    cols = graph.col_indices

    if batch.num_deletes:
        src = np.repeat(
            np.arange(n, dtype=VERTEX_DTYPE), np.diff(offsets)
        )
        # Pair keys fit int64 as long as n * n < 2**63 — far beyond any
        # laptop-scale graph; dst < n keeps the encoding collision-free.
        keys = src * np.int64(n) + cols
        del_keys = batch.delete_src * np.int64(n) + batch.delete_dst
        keep = ~np.isin(keys, del_keys)
        src = src[keep]
        cols = cols[keep]
        degrees = np.bincount(src, minlength=n).astype(VERTEX_DTYPE)
    else:
        degrees = np.diff(offsets)
        cols = cols.copy()

    if batch.num_inserts:
        ins_src = batch.insert_src
        ins_counts = np.bincount(ins_src, minlength=n).astype(VERTEX_DTYPE)
        new_degrees = degrees + ins_counts
        new_offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.cumsum(new_degrees, out=new_offsets[1:])
        new_cols = np.empty(int(new_offsets[-1]), dtype=VERTEX_DTYPE)
        # Surviving old edges shift right by the number of inserts that
        # land at smaller sources (inserts append *after* each source's
        # existing edges).
        ins_shift = np.zeros(n, dtype=VERTEX_DTYPE)
        np.cumsum(ins_counts[:-1], out=ins_shift[1:])
        if cols.size:
            old_positions = (
                np.arange(cols.size, dtype=VERTEX_DTYPE)
                + np.repeat(ins_shift, degrees)
            )
            new_cols[old_positions] = cols
        # Inserted edges: stable sort by source keeps submission order
        # within each source; rank-within-source places them after the
        # surviving old edges.
        order = np.argsort(ins_src, kind="stable")
        sorted_src = ins_src[order]
        first = np.empty(sorted_src.size, dtype=bool)
        first[0] = True
        first[1:] = sorted_src[1:] != sorted_src[:-1]
        group_starts = np.flatnonzero(first)
        group_sizes = np.diff(np.append(group_starts, sorted_src.size))
        rank = np.arange(sorted_src.size, dtype=VERTEX_DTYPE) - np.repeat(
            group_starts, group_sizes
        )
        ins_positions = new_offsets[sorted_src] + degrees[sorted_src] + rank
        new_cols[ins_positions] = batch.insert_dst[order]
        return CSRGraph(new_offsets, new_cols, validate=False)

    new_offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.cumsum(degrees, out=new_offsets[1:])
    return CSRGraph(new_offsets, cols, validate=False)


class GraphOverlay:
    """Mutable edge overlay over a frozen base CSR.

    Mutations accumulate in a pending batch at O(1) amortized cost per
    edge; :meth:`commit` folds the batch into a fresh immutable CSR
    (the ``current`` snapshot source).  Between commits,
    :meth:`neighbors` answers point queries against the merged view
    without materializing anything.
    """

    def __init__(self, base: CSRGraph) -> None:
        self.base = base
        #: Latest committed CSR (``base`` until the first commit).
        self.current = base
        self.num_vertices = base.num_vertices
        self._pending_inserts: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending_deletes: List[Tuple[np.ndarray, np.ndarray]] = []
        #: Committed batches so far (epoch fold count).
        self.commits = 0
        self.total_inserted = 0
        self.total_deleted = 0

    # ------------------------------------------------------------------
    # Mutation intake
    # ------------------------------------------------------------------
    def insert_edges(self, src, dst) -> int:
        """Queue directed edge inserts; returns the number queued."""
        src, dst = _as_edge_arrays(src, dst, self.num_vertices, "inserts")
        if src.size:
            self._pending_inserts.append((src, dst))
        return int(src.size)

    def delete_edges(self, src, dst) -> int:
        """Queue edge deletes (every copy of each pair is removed at
        commit); returns the number of pairs queued."""
        src, dst = _as_edge_arrays(src, dst, self.num_vertices, "deletes")
        if src.size:
            self._pending_deletes.append((src, dst))
        return int(src.size)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending_inserts or self._pending_deletes)

    def pending_batch(self) -> MutationBatch:
        """The queued mutations as one :class:`MutationBatch`."""
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        isrc = (
            np.concatenate([s for s, _ in self._pending_inserts])
            if self._pending_inserts
            else empty
        )
        idst = (
            np.concatenate([d for _, d in self._pending_inserts])
            if self._pending_inserts
            else empty
        )
        dsrc = (
            np.concatenate([s for s, _ in self._pending_deletes])
            if self._pending_deletes
            else empty
        )
        ddst = (
            np.concatenate([d for _, d in self._pending_deletes])
            if self._pending_deletes
            else empty
        )
        return MutationBatch(isrc, idst, dsrc, ddst)

    # ------------------------------------------------------------------
    # Merged point view (pre-commit)
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` under the pending delta, without
        folding: committed adjacency minus pending deletes of ``v``,
        plus pending inserts from ``v`` in submission order."""
        if not 0 <= v < self.num_vertices:
            raise StreamError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )
        neigh = self.current.neighbors(v)
        doomed = [
            dst[src == v] for src, dst in self._pending_deletes
        ]
        if doomed:
            drop = np.concatenate(doomed)
            if drop.size:
                neigh = neigh[~np.isin(neigh, drop)]
        added = [dst[src == v] for src, dst in self._pending_inserts]
        if added:
            neigh = np.concatenate([neigh] + added)
        return neigh

    @property
    def num_edges(self) -> int:
        """Edge count of the merged view (exact, O(pending))."""
        count = self.current.num_edges
        if self._pending_deletes:
            batch = self.pending_batch()
            folded = apply_batch(self.current, batch)
            return folded.num_edges
        for src, _ in self._pending_inserts:
            count += src.size
        return count

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def commit(self) -> Tuple[CSRGraph, MutationBatch]:
        """Fold the pending batch into a fresh CSR.

        Returns ``(graph, batch)``: the new committed snapshot source
        and the batch that produced it.  With nothing pending the
        current graph is returned with an empty batch.
        """
        batch = self.pending_batch()
        self._pending_inserts = []
        self._pending_deletes = []
        if batch.empty:
            return self.current, batch
        deleted_before = self.current.num_edges
        self.current = apply_batch(self.current, batch)
        self.commits += 1
        self.total_inserted += batch.num_inserts
        self.total_deleted += (
            deleted_before + batch.num_inserts - self.current.num_edges
        )
        return self.current, batch

    def compact(self) -> CSRGraph:
        """Commit anything pending and return the folded CSR."""
        graph, _ = self.commit()
        return graph

    def __repr__(self) -> str:
        return (
            f"GraphOverlay(vertices={self.num_vertices}, "
            f"committed_edges={self.current.num_edges}, "
            f"pending={self.pending_batch()!r})"
        )
