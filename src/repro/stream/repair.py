"""Incremental BFS repair for insert-only mutation batches.

Edge inserts can only *lower* BFS depths: every old shortest path still
exists in the new graph.  So a cached depth matrix for epoch N is not
garbage after an insert batch — it is an upper bound on epoch N+1's
depths, and the exact new matrix is recovered by relaxing from the
inserted edges outward instead of re-traversing from the sources.

The repair is a multi-source scatter-min over the *new* graph:

1. Seed: for each inserted edge ``(u, v)`` and each BFS instance,
   propose ``depth[u] + 1`` for ``v``; keep proposals that improve.
2. Rounds: vertices whose depth improved re-propose ``depth + 1`` to
   their out-neighbors (new CSR), until a round improves nothing.

Because BFS depths are unique (the shortest-path metric has a single
fixed point), the repaired matrix is **bit-identical** to running the
engine from scratch on the post-mutation snapshot — including under a
``max_depth`` cap, since any vertex at depth ``d <= max_depth`` has a
BFS parent at ``d - 1``, so capped propagation never cuts a needed
chain.  The differential suite pins this equivalence.

Deletes can raise depths, which a cached matrix cannot bound from
above; :func:`plan_repair` routes any batch with deletes — and any
insert batch whose estimated repair frontier exceeds the cost
threshold — to full recomputation instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import StreamError
from repro.graph.csr import CSRGraph
from repro.stream.overlay import MutationBatch

#: Repair decisions, in increasing order of work.
NOOP = "noop"
REPAIR = "repair"
RECOMPUTE = "recompute"


@dataclass(frozen=True)
class RepairConfig:
    """Cost-model knobs for :func:`plan_repair`.

    ``max_seed_fraction`` bounds the estimated repair wavefront (sum of
    new-graph out-degrees of inserted-edge heads) as a fraction of
    |E|: past it, a from-scratch traversal's near-linear frontier
    machinery beats scatter-min rounds and repair is declined.
    """

    max_seed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_seed_fraction <= 1.0:
            raise StreamError(
                "max_seed_fraction must be in [0, 1], got "
                f"{self.max_seed_fraction}"
            )


@dataclass(frozen=True)
class RepairPlan:
    """Outcome of the repair cost model for one batch."""

    decision: str  # one of NOOP / REPAIR / RECOMPUTE
    reason: str
    #: Estimated wavefront cost (degree sum of insert heads), -1 when
    #: the decision did not need it.
    seed_cost: int = -1
    #: Cost budget the estimate was compared against.
    budget: int = -1


def plan_repair(
    batch: MutationBatch,
    graph: CSRGraph,
    config: Optional[RepairConfig] = None,
) -> RepairPlan:
    """Decide how to bring cached depth rows up to date after ``batch``.

    ``graph`` is the *post-mutation* snapshot.  Deletes always force
    recomputation; empty batches are no-ops; insert batches repair
    unless the estimated wavefront exceeds the configured budget.
    """
    config = config or RepairConfig()
    if batch.empty:
        return RepairPlan(NOOP, "empty batch")
    if not batch.insert_only:
        return RepairPlan(
            RECOMPUTE,
            f"batch has {batch.num_deletes} deletes; cached depths are "
            "not an upper bound",
        )
    degrees = graph.out_degrees()
    seed_cost = int(degrees[batch.insert_dst].sum()) + batch.num_inserts
    budget = int(config.max_seed_fraction * graph.num_edges)
    if seed_cost > budget:
        return RepairPlan(
            RECOMPUTE,
            f"estimated repair wavefront {seed_cost} exceeds budget "
            f"{budget} ({config.max_seed_fraction:.0%} of |E|)",
            seed_cost=seed_cost,
            budget=budget,
        )
    return RepairPlan(
        REPAIR,
        f"insert-only batch, wavefront {seed_cost} within budget {budget}",
        seed_cost=seed_cost,
        budget=budget,
    )


def _scatter_relax(
    work: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter-min ``values`` into ``work[rows, cols]``.

    Returns the (row, col) coordinates that actually improved.  Uses
    flat indexing + ``np.minimum.at`` so duplicate targets within one
    round resolve to the smallest proposal, matching BFS's level-
    synchronous semantics.
    """
    flat = rows * np.int64(n) + cols
    uniq, inverse = np.unique(flat, return_inverse=True)
    best = np.full(uniq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(best, inverse, values)
    prev = work.reshape(-1)[uniq]
    improved = best < prev
    hit = uniq[improved]
    work.reshape(-1)[hit] = best[improved]
    return hit // n, hit % n


def repair_depth_matrix(
    graph: CSRGraph,
    batch: MutationBatch,
    depths: np.ndarray,
    max_depth: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Patch a cached depth matrix across an insert-only batch.

    Parameters
    ----------
    graph:
        The **post-mutation** CSR snapshot.
    batch:
        The insert-only batch that produced ``graph``.
    depths:
        int32 ``(k, n)`` depth matrix valid for the pre-mutation graph
        (unvisited = -1), computed under the same ``max_depth``.
    max_depth:
        The cap the cached matrix was computed under; depths beyond it
        stay -1, exactly as the engines record them.

    Returns ``(repaired, rounds)``: a fresh int32 matrix bit-identical
    to a from-scratch run on ``graph``, and the number of relaxation
    rounds the repair took (0 when nothing improved).
    """
    if not batch.insert_only:
        raise StreamError(
            "repair_depth_matrix requires an insert-only batch; "
            "deletes need full recomputation"
        )
    n = graph.num_vertices
    if depths.ndim != 2 or depths.shape[1] != n:
        raise StreamError(
            f"depth matrix shape {depths.shape} does not match "
            f"graph with {n} vertices"
        )
    k = depths.shape[0]
    # A true shortest depth in an n-vertex graph is at most n - 1, so
    # the uncapped case prunes at n - 1 and the INF sentinel (n + 1)
    # still maps back to -1 at the end.
    cap = (
        np.int64(max_depth)
        if max_depth is not None
        else np.int64(max(n - 1, 0))
    )
    inf = np.int64(n + 1)

    # Unvisited (-1) becomes INF so min() treats it as "infinitely far";
    # int64 headroom means cand = work + 1 never wraps.
    work = depths.astype(np.int64)
    work[work < 0] = inf

    if batch.num_inserts == 0 or k == 0:
        return depths.astype(np.int32, copy=True), 0

    offsets = graph.row_offsets
    cols = graph.col_indices
    inst = np.arange(k, dtype=np.int64)

    # Seed round: relax every inserted edge in every instance.
    m = batch.num_inserts
    rows = np.repeat(inst, m)
    src = np.tile(batch.insert_src, k)
    dst = np.tile(batch.insert_dst, k)
    cand = work[rows, src] + 1
    ok = cand <= cap
    rows, dst, cand = rows[ok], dst[ok], cand[ok]
    if rows.size == 0:
        return depths.astype(np.int32, copy=True), 0
    frow, fcol = _scatter_relax(work, rows, dst, cand, n)

    rounds = 0
    while frow.size:
        rounds += 1
        # Expand: every improved (instance, vertex) proposes depth+1 to
        # its out-neighbors in the new graph.
        deg = (offsets[fcol + 1] - offsets[fcol]).astype(np.int64)
        rows = np.repeat(frow, deg)
        base = np.repeat(offsets[fcol], deg)
        step = np.arange(rows.size, dtype=np.int64) - np.repeat(
            np.cumsum(deg) - deg, deg
        )
        targets = cols[base + step]
        cand = np.repeat(work[frow, fcol], deg) + 1
        ok = cand <= cap
        rows, targets, cand = rows[ok], targets[ok], cand[ok]
        if rows.size == 0:
            break
        frow, fcol = _scatter_relax(work, rows, targets, cand, n)

    repaired = np.where(work > cap, np.int64(-1), work).astype(np.int32)
    return repaired, rounds
