"""Churn-capable load generation: queries interleaved with mutations.

Extends the closed-loop client model of :mod:`repro.service.loadgen`
with a mutation stream: every ``mutate_every`` completed queries, one
random edge batch (inserts and/or deletes, drawn from a seeded RNG)
hits the :class:`~repro.stream.service.DynamicBFSServer`, publishing a
new epoch mid-workload.  The run stays fully deterministic — same
(graph, churn config, serving config) triple, same depths, same epoch
history — because mutations fire at simulated-time barriers decided by
the request stream, not by wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import QueueFullError, ServiceError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.service.loadgen import LoadResult, WorkloadConfig, sample_sources
from repro.service.request import Request, Response
from repro.stream.service import DynamicBFSServer, EpochRecord


@dataclass(frozen=True)
class ChurnConfig:
    """Shape of the mutation stream riding along a workload."""

    #: One mutation batch per this many completed queries (0 = never).
    mutate_every: int = 64
    #: Edge inserts per batch.
    inserts_per_batch: int = 8
    #: Edge deletes per batch (deletes force full cache recomputation,
    #: so insert-only churn is the repair-path benchmark).
    deletes_per_batch: int = 0
    #: Seed for edge sampling (independent of the query-source seed).
    seed: int = 1

    def __post_init__(self) -> None:
        if self.mutate_every < 0:
            raise ServiceError("mutate_every must be non-negative")
        if self.inserts_per_batch < 0:
            raise ServiceError("inserts_per_batch must be non-negative")
        if self.deletes_per_batch < 0:
            raise ServiceError("deletes_per_batch must be non-negative")
        if self.inserts_per_batch == 0 and self.deletes_per_batch == 0:
            raise ServiceError(
                "churn needs inserts_per_batch or deletes_per_batch > 0"
            )


def random_insert_batch(
    num_vertices: int, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` random directed edges over ``[0, num_vertices)``."""
    src = rng.integers(0, num_vertices, size=count, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=count, dtype=VERTEX_DTYPE)
    return src, dst


def random_delete_batch(
    graph: CSRGraph, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` existing edges sampled uniformly from ``graph``
    (fewer when the graph has fewer edges)."""
    m = graph.num_edges
    if m == 0 or count == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty
    picks = rng.choice(m, size=min(count, m), replace=False)
    src_all = np.repeat(
        np.arange(graph.num_vertices, dtype=VERTEX_DTYPE),
        graph.out_degrees(),
    )
    return src_all[picks], graph.col_indices[picks]


def run_churn_loop(
    server: DynamicBFSServer,
    workload: WorkloadConfig,
    churn: ChurnConfig,
) -> Tuple[LoadResult, List[EpochRecord]]:
    """Drive a dynamic server with closed-loop clients plus churn.

    Mirrors :func:`repro.service.loadgen.run_closed_loop`, firing one
    mutation batch through :meth:`DynamicBFSServer.mutate` after every
    ``churn.mutate_every`` completions.  Returns the usual
    :class:`LoadResult` plus the epoch records the churn produced.
    """
    sources = sample_sources(
        server.graph,
        workload.num_requests,
        workload.zipf_exponent,
        workload.seed,
    )
    rng = np.random.default_rng(churn.seed)
    n = server.graph.num_vertices

    tiebreak = itertools.count()
    issue_events: List[tuple] = []
    for client in range(min(workload.num_clients, workload.num_requests)):
        heapq.heappush(issue_events, (0.0, next(tiebreak), client))

    owners: Dict[int, int] = {}
    responses: List[Response] = []
    records: List[EpochRecord] = []
    issued = 0
    shed = 0
    completions_since_mutation = 0
    start_clock = server.clock

    def maybe_mutate() -> None:
        nonlocal completions_since_mutation
        if churn.mutate_every == 0:
            return
        if completions_since_mutation < churn.mutate_every:
            return
        completions_since_mutation = 0
        inserts = (
            random_insert_batch(n, churn.inserts_per_batch, rng)
            if churn.inserts_per_batch
            else None
        )
        deletes = (
            random_delete_batch(
                server.graph, churn.deletes_per_batch, rng
            )
            if churn.deletes_per_batch
            else None
        )
        records.append(server.mutate(inserts=inserts, deletes=deletes))

    def absorb(done: List[Response]) -> None:
        nonlocal completions_since_mutation
        for response in done:
            responses.append(response)
            completions_since_mutation += 1
            client = owners.pop(response.request_id)
            if issued < workload.num_requests or owners or issue_events:
                heapq.heappush(
                    issue_events,
                    (
                        response.completion_time + workload.think_time,
                        next(tiebreak),
                        client,
                    ),
                )
        maybe_mutate()

    def collect() -> None:
        absorb(server.take_completed())

    while issued < workload.num_requests or owners:
        if issue_events and issued < workload.num_requests:
            at, _, client = heapq.heappop(issue_events)
            at = max(at, server.clock)
            request = Request(
                source=sources[issued],
                kind=workload.kind,
                max_depth=workload.max_depth,
            )
            try:
                request_id = server.submit(request, arrival_time=at)
            except QueueFullError:
                shed += 1
                issued += 1
                heapq.heappush(
                    issue_events,
                    (at + workload.shed_backoff, next(tiebreak), client),
                )
                collect()
                continue
            owners[request_id] = client
            issued += 1
            collect()
        elif owners:
            # A mutation barrier inside absorb() may have flushed
            # responses already; drain()'s returns go through the same
            # bookkeeping so none are dropped on the floor.
            if not server.step():
                absorb(server.drain())
            collect()
        else:
            break

    absorb(server.drain())
    collect()

    elapsed = server.clock - start_clock
    completed = sum(1 for r in responses if r.ok)
    errored = sum(1 for r in responses if not r.ok)
    result = LoadResult(
        completed=completed,
        shed=shed,
        errored=errored,
        elapsed=elapsed,
        throughput=completed / elapsed if elapsed > 0 else 0.0,
        metrics=server.metrics_snapshot(elapsed=elapsed),
        responses=responses,
    )
    return result, records
