"""Epoch-aware BFS serving: mutations interleaved with queries.

:class:`DynamicBFSServer` extends the discrete-event
:class:`~repro.service.server.BFSServer` with a :meth:`mutate` verb.
Each mutation batch is a *barrier* in simulated time: pending batches
flush against the old epoch (queries admitted before the mutation see
pre-mutation depths, bit-identically), then the overlay folds into a
new epoch snapshot with its own ``graph_cache_id``, and the serving
substrate — engine, optional partitioned engine, micro-batcher, cache
keying — swaps onto the new graph.

Cache handling per epoch swap, the part worth the subsystem:

* **Plan cache** — recorded traversal plans embed old-graph frontier
  structure; every old-epoch entry is purged (counted as an
  invalidation, not an eviction).
* **Result cache** — for *insert-only* batches within the repair cost
  budget, cached depth rows are **repaired in place**: rows are
  bucketed by ``max_depth``, repaired jointly as one matrix via
  :func:`~repro.stream.repair.repair_depth_matrix`, and re-keyed to
  the new epoch preserving LRU order.  The repaired rows are
  bit-identical to re-traversing on the new graph, so post-mutation
  cache hits stay exact.  Batches with deletes (or oversized insert
  wavefronts) drop the old rows instead — correct, just colder.

Every swap appends an :class:`EpochRecord`; ``metrics_snapshot`` gains
an ``"epochs"`` section aggregating repair/invalidation counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from dataclasses import replace as dc_replace

from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.slo import SIGNAL_CACHE_STALENESS
from repro.runtime import SubstrateSpec
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.server import BFSServer, ServingConfig
from repro.stream.epoch import Snapshot
from repro.stream.overlay import MutationBatch
from repro.stream.repair import (
    NOOP,
    RECOMPUTE,
    REPAIR,
    RepairConfig,
    plan_repair,
    repair_depth_matrix,
)


@dataclass(frozen=True)
class EpochRecord:
    """Bookkeeping for one epoch swap (one :meth:`mutate` call)."""

    epoch: int
    time: float
    inserts: int
    deletes: int
    #: Repair decision: "noop", "repair", or "recompute".
    decision: str
    reason: str
    #: Depth rows patched across the swap (kept hot).
    rows_repaired: int = 0
    #: Depth rows dropped (cold restart for their sources).
    rows_dropped: int = 0
    #: Plan-cache entries purged.
    plans_purged: int = 0
    #: Scatter-min rounds the repair took (0 for noop/recompute).
    repair_rounds: int = 0

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "decision": self.decision,
            "rows_repaired": self.rows_repaired,
            "rows_dropped": self.rows_dropped,
            "plans_purged": self.plans_purged,
            "repair_rounds": self.repair_rounds,
        }


class DynamicBFSServer(BFSServer):
    """A :class:`BFSServer` whose graph mutates between queries.

    Parameters beyond :class:`BFSServer`'s: ``share`` publishes each
    epoch snapshot over POSIX shared memory (reclaimed when the epoch
    is superseded and unpinned), and ``repair_config`` tunes the
    repair-vs-recompute cost model.  The serving substrate is always
    the epoch-swapping ``stream`` substrate; its delegate (serial,
    executor, or partitioned) follows the spec.  A substrate-owned
    executor (``workers > 0`` in the spec) survives mutation — each
    epoch swap republishes the new graph to a fresh worker pool.  A
    *caller-owned* ``executor`` object is refused with a typed
    :class:`~repro.errors.UnsupportedMutationError`: its workers map
    one published graph for their lifetime, which is exactly what an
    epoch swap violates.
    """

    def __init__(
        self,
        graph: CSRGraph,
        serving: Optional[ServingConfig] = None,
        share: bool = False,
        repair_config: Optional[RepairConfig] = None,
        **kwargs,
    ) -> None:
        self._groupby_config = kwargs.get("groupby_config")
        self.repair_config = repair_config or RepairConfig()
        self.epoch_records: List[EpochRecord] = []
        serving = serving or ServingConfig()
        # Force the epoch-swapping substrate: whatever placement the
        # caller asked for becomes the per-epoch delegate.
        spec = kwargs.pop("substrate", None)
        if spec is None:
            spec = SubstrateSpec.from_flags(
                partitions=serving.partitions,
                layout=serving.partition_layout,
                churn=True,
                share=share,
            )
        elif spec.kind != "stream":
            spec = SubstrateSpec.from_flags(
                kind=spec.kind,
                workers=spec.workers,
                partitions=spec.partitions,
                layout=spec.layout,
                scheduler=spec.scheduler,
                churn=True,
                share=share,
            )
        elif share and not spec.share:
            spec = dc_replace(spec, share=True)
        super().__init__(graph, serving=serving, substrate=spec, **kwargs)

    @property
    def epochs(self):
        """The stream substrate's :class:`~repro.stream.epoch.EpochStore`
        (read-only back-compat view)."""
        return self.substrate.epochs

    # ------------------------------------------------------------------
    # Mutation surface
    # ------------------------------------------------------------------
    def mutate(
        self,
        inserts: Optional[Tuple] = None,
        deletes: Optional[Tuple] = None,
        arrival_time: Optional[float] = None,
    ) -> EpochRecord:
        """Apply one mutation batch and publish a new epoch.

        ``inserts`` / ``deletes`` are ``(src, dst)`` array pairs.  The
        call is a barrier at ``arrival_time`` (default: current clock):
        everything already queued executes against the old epoch first;
        requests submitted afterwards see the new one.  Returns the
        :class:`EpochRecord` describing what happened to the caches.
        """
        now = self.clock if arrival_time is None else float(arrival_time)
        if now < self.clock:
            raise ServiceError(
                f"mutation arrival {now} is before the server clock "
                f"{self.clock}"
            )
        with obs_tracing.get_tracer().span("stream.mutate") as mspan:
            record = self._mutate_inner(inserts, deletes, now, mspan)
        self._record_mutation(record, mspan)
        return record

    def _mutate_inner(
        self,
        inserts: Optional[Tuple],
        deletes: Optional[Tuple],
        now: float,
        mspan,
    ) -> EpochRecord:
        self.advance_to(now)
        # Barrier: flush in-flight batches on the old epoch.  Completed
        # responses stay queued for take_completed() as usual.
        while len(self.batcher) > 0:
            free = min(self._device_free)
            self.clock = max(self.clock, free)
            self._dispatch(self.clock, draining=True)

        if inserts is not None:
            self.substrate.overlay.insert_edges(*inserts)
        if deletes is not None:
            self.substrate.overlay.delete_edges(*deletes)
        batch = self.substrate.overlay.pending_batch()
        if batch.empty:
            return EpochRecord(
                epoch=self.epochs.current_epoch,
                time=self.clock,
                inserts=0,
                deletes=0,
                decision=NOOP,
                reason="empty batch",
            )

        old_graph_id = self._graph_id
        with obs_tracing.get_tracer().span(
            "stream.publish",
            inserts=batch.num_inserts,
            deletes=batch.num_deletes,
        ) as span:
            # publish() folds the overlay into a new epoch AND routes
            # the swap through the substrate's on_epoch_published hook
            # (rebuilding the serial/partitioned delegate, or tearing
            # down and republishing the executor's worker pool).
            snap = self.substrate.publish()
            plan = plan_repair(batch, snap.graph, self.repair_config)
            self._on_epoch(snap)
            repaired, rounds = 0, 0
            if plan.decision == REPAIR:
                with obs_tracing.get_tracer().span(
                    "stream.repair",
                    inserts=batch.num_inserts,
                ) as rspan:
                    repaired, rounds = self._repair_result_cache(
                        old_graph_id, snap, batch
                    )
                    if rspan is not None:
                        rspan.annotate(
                            rows_repaired=repaired, repair_rounds=rounds
                        )
                dropped = 0
            else:
                dropped = self.cache.purge(
                    lambda key: key[0] == old_graph_id
                )
            plans_purged = self.plan_cache.purge(
                lambda key: key[0] == old_graph_id
            )
            if span is not None:
                span.annotate(
                    epoch=snap.epoch,
                    decision=plan.decision,
                    rows_repaired=repaired,
                    rows_dropped=dropped,
                    plans_purged=plans_purged,
                )

        return EpochRecord(
            epoch=snap.epoch,
            time=self.clock,
            inserts=batch.num_inserts,
            deletes=batch.num_deletes,
            decision=plan.decision,
            reason=plan.reason,
            rows_repaired=repaired,
            rows_dropped=dropped,
            plans_purged=plans_purged,
            repair_rounds=rounds,
        )

    def _record_mutation(self, record: EpochRecord, mspan) -> None:
        """One swap's bookkeeping fan-out: epoch history, hub counters,
        span attrs, and the cache-staleness SLO signal."""
        self.epoch_records.append(record)
        touched = record.rows_repaired + record.rows_dropped
        staleness = (
            record.rows_dropped / touched if touched > 0 else 0.0
        )
        if mspan is not None:
            mspan.annotate(
                epoch=record.epoch,
                decision=record.decision,
                inserts=record.inserts,
                deletes=record.deletes,
                rows_repaired=record.rows_repaired,
                rows_dropped=record.rows_dropped,
                cache_staleness=staleness,
            )
        hub = obs_metrics.get_hub()
        hub.counter(
            "stream_mutations_total",
            help="mutation batches applied, by repair decision",
            labels={"decision": record.decision},
        ).inc()
        if record.decision != NOOP:
            hub.counter(
                "stream_rows_repaired_total",
                help="cached depth rows patched across epoch swaps",
            ).inc(record.rows_repaired)
            hub.counter(
                "stream_rows_dropped_total",
                help="cached depth rows invalidated by epoch swaps",
            ).inc(record.rows_dropped)
            hub.counter(
                "stream_plans_purged_total",
                help="plan-cache entries purged by epoch swaps",
            ).inc(record.plans_purged)
            self._observe_slo(SIGNAL_CACHE_STALENESS, staleness)

    # ------------------------------------------------------------------
    # Epoch swap internals
    # ------------------------------------------------------------------
    def _on_epoch(self, snap: Snapshot) -> None:
        """Point the server-side machinery at the new epoch's graph.

        The traversal substrate has already swapped (inside
        :meth:`~repro.runtime.StreamSubstrate.publish`); what remains is
        the serving bookkeeping built over the graph object itself.
        """
        self.graph = snap.graph
        self.batch_size = min(
            self.serving.batch_size,
            self.substrate.effective_group_size(),
        )
        # The batcher is empty post-barrier; rebuild it so GroupBy sees
        # the new adjacency and the new batch-size clamp.
        self.batcher = MicroBatcher(
            snap.graph,
            self.batch_size,
            self.serving.flush_deadline,
            groupby=self.serving.groupby,
            groupby_config=self._groupby_config,
        )
        self._graph_id = snap.graph_id
        # engine_key is config-derived and stable across epochs; the
        # graph_id swap alone re-namespaces both caches.

    def _repair_result_cache(
        self, old_graph_id: str, snap: Snapshot, batch: MutationBatch
    ) -> Tuple[int, int]:
        """Patch cached depth rows onto the new epoch, preserving LRU
        order.  Returns ``(rows_repaired, total_rounds)``."""
        entries = self.cache.items()
        # Bucket old-epoch rows by the max_depth they were computed
        # under; each bucket repairs jointly as one (k, n) matrix.
        buckets: Dict[Optional[int], List[Tuple[int, np.ndarray]]] = {}
        for key, row in entries:
            if key[0] == old_graph_id and key[2] == self._engine_key:
                buckets.setdefault(key[3], []).append((key[1], row))
        if not buckets:
            return 0, 0
        repaired_rows: Dict[Tuple, np.ndarray] = {}
        total_rounds = 0
        for max_depth, rows in buckets.items():
            matrix = np.stack([row for _, row in rows])
            fixed, rounds = repair_depth_matrix(
                snap.graph, batch, matrix, max_depth=max_depth
            )
            total_rounds += rounds
            for i, (source, _) in enumerate(rows):
                new_key = ResultCache.key(
                    snap.graph_id, source, self._engine_key, max_depth
                )
                repaired_rows[(old_graph_id, source,
                               self._engine_key, max_depth)] = (
                    new_key,
                    fixed[i],
                )
        # Rebuild the cache in its original LRU order, swapping each
        # old-epoch entry for its repaired, re-keyed row.
        self.cache.clear()
        for key, row in entries:
            swap = repaired_rows.get(key)
            if swap is not None:
                self.cache.put(swap[0], swap[1])
            elif key[0] == old_graph_id:
                # Same graph id, different engine key (cannot happen on
                # one server, but stay safe): drop rather than serve a
                # row we did not repair.
                self.cache.invalidations += 1
            else:
                self.cache.put(key, row)
        return len(repaired_rows), total_rounds

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics_snapshot(self, elapsed: Optional[float] = None) -> dict:
        """Server metrics plus the ``"epochs"`` section: swap history
        and aggregate repair/invalidation counters."""
        payload = super().metrics_snapshot(elapsed=elapsed)
        records = self.epoch_records
        payload["epochs"] = {
            "current_epoch": self.epochs.current_epoch,
            "published": sum(1 for r in records if r.decision != NOOP),
            "repairs": sum(1 for r in records if r.decision == REPAIR),
            "recomputes": sum(
                1 for r in records if r.decision == RECOMPUTE
            ),
            "rows_repaired": sum(r.rows_repaired for r in records),
            "rows_dropped": sum(r.rows_dropped for r in records),
            "plans_purged": sum(r.plans_purged for r in records),
            "reclaimed_epochs": self.epochs.reclaimed_epochs,
            "history": [r.to_dict() for r in records],
        }
        return payload

    def close(self) -> None:
        # The stream substrate owns the epoch store; closing the
        # substrate closes both the delegate and the store.
        super().close()
