"""Epoch-tagged immutable graph snapshots with refcounted publication.

Each :meth:`EpochStore.publish` folds the pending overlay delta into a
fresh frozen CSR and tags it with a monotonically increasing epoch
number.  The snapshot carries its own content fingerprint
(``graph_cache_id``), so downstream caches keyed by graph id — depth
rows, traversal plans, shm segments — invalidate *by keying*: epoch
N+1 simply has a different id, and nothing keyed to epoch N's id is
ever served against the new graph.

Queries in flight on epoch N keep working unaffected: they hold a
:class:`Snapshot` (and optionally a :class:`PinToken`) whose graph
object and shm segments stay alive until the pin count drops to zero
*and* the epoch is superseded.  The current epoch is never reclaimed.

Crash safety: a pin can record its owner pid.  :meth:`EpochStore.gc`
probes recorded pids with ``os.kill(pid, 0)`` and drops pins whose
owner died, so a reader that crashed mid-query cannot leak the shm
segments of a superseded epoch forever.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StreamError
from repro.graph.csr import CSRGraph
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.service.cache import graph_cache_id
from repro.stream.overlay import GraphOverlay, MutationBatch


@dataclass
class PinToken:
    """One outstanding reference to an epoch snapshot.

    ``pid`` (optional) names the owner process; :meth:`EpochStore.gc`
    drops tokens whose owner has died.
    """

    epoch: int
    token_id: int
    pid: Optional[int] = None


@dataclass
class Snapshot:
    """One immutable published graph version."""

    epoch: int
    graph: CSRGraph
    graph_id: str
    batch: MutationBatch
    #: shm handle when the store publishes to shared memory, else None.
    shm_handle: object = None
    pins: Dict[int, PinToken] = field(default_factory=dict)
    reclaimed: bool = False

    @property
    def pinned(self) -> bool:
        return bool(self.pins)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class EpochStore:
    """Versioned snapshot store over a :class:`GraphOverlay`.

    ``share=True`` additionally publishes each snapshot's CSR arrays
    into POSIX shared memory (:mod:`repro.exec.shm`); the publication is
    released when the epoch is reclaimed, so superseded, unpinned epochs
    give their segments back even while newer epochs keep serving.
    """

    def __init__(self, base: CSRGraph, share: bool = False) -> None:
        self.overlay = GraphOverlay(base)
        self.share = share
        self._token_ids = itertools.count(1)
        self._snapshots: Dict[int, Snapshot] = {}
        self._closed = False
        #: Snapshots reclaimed so far (shm released, graph dropped).
        self.reclaimed_epochs = 0
        # Epoch 0 is the base graph, published eagerly so the store is
        # never empty and the base participates in the same lifecycle.
        self._current_epoch = 0
        self._snapshots[0] = self._make_snapshot(
            0, base, MutationBatch.make(base.num_vertices)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        return self._current_epoch

    @property
    def current(self) -> Snapshot:
        return self._snapshots[self._current_epoch]

    def snapshot(self, epoch: Optional[int] = None) -> Snapshot:
        """The snapshot for ``epoch`` (default: current).

        Raises :class:`~repro.errors.StreamError` for unknown or
        already-reclaimed epochs.
        """
        if epoch is None:
            epoch = self._current_epoch
        snap = self._snapshots.get(epoch)
        if snap is None or snap.reclaimed:
            raise StreamError(
                f"epoch {epoch} is unknown or already reclaimed "
                f"(current epoch is {self._current_epoch})"
            )
        return snap

    def live_epochs(self) -> List[int]:
        """Epoch numbers still holding a graph (current + pinned old)."""
        return sorted(
            e for e, s in self._snapshots.items() if not s.reclaimed
        )

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _make_snapshot(
        self, epoch: int, graph: CSRGraph, batch: MutationBatch
    ) -> Snapshot:
        graph_id = graph_cache_id(graph)  # freezes as a side effect
        handle = None
        if self.share:
            from repro.exec import shm

            handle = shm.publish_graph(graph)
        return Snapshot(
            epoch=epoch,
            graph=graph,
            graph_id=graph_id,
            batch=batch,
            shm_handle=handle,
        )

    def publish(self) -> Snapshot:
        """Fold pending mutations into a new epoch and make it current.

        With nothing pending this is a no-op returning the current
        snapshot (no new epoch, no re-fingerprint, no shm churn).
        After publishing, superseded unpinned epochs are reclaimed.
        """
        self._check_open()
        if not self.overlay.has_pending:
            return self.current
        graph, batch = self.overlay.commit()
        epoch = self._current_epoch + 1
        snap = self._make_snapshot(epoch, graph, batch)
        self._snapshots[epoch] = snap
        self._current_epoch = epoch
        self.gc()
        return snap

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(
        self, epoch: Optional[int] = None, pid: Optional[int] = None
    ) -> PinToken:
        """Take a reference on an epoch, keeping it alive across later
        publishes.  ``pid`` marks the owner for crash-aware GC."""
        self._check_open()
        snap = self.snapshot(epoch)
        token = PinToken(
            epoch=snap.epoch, token_id=next(self._token_ids), pid=pid
        )
        snap.pins[token.token_id] = token
        return token

    def unpin(self, token: PinToken) -> None:
        """Drop a reference; reclaims the epoch when it was the last pin
        on a superseded epoch."""
        snap = self._snapshots.get(token.epoch)
        if snap is None:
            return
        snap.pins.pop(token.token_id, None)
        self.gc()

    # ------------------------------------------------------------------
    # Reclamation
    # ------------------------------------------------------------------
    def gc(self) -> int:
        """Reclaim superseded epochs with no *live* pins.

        A pin whose recorded owner pid no longer exists counts as dead
        and is dropped first — a crashed reader cannot keep a
        superseded epoch's shm segments mapped, so holding its pin
        forever would only leak them.  Returns the number of epochs
        reclaimed by this call.  The current epoch is never touched.

        Each call emits a ``stream.gc`` span (candidates scanned,
        epochs reclaimed) and bumps ``stream_epochs_reclaimed_total``
        on the hub, so epoch reclamation shows up in trace reports
        next to the publishes that triggered it.
        """
        reclaimed = 0
        scanned = 0
        with obs_tracing.get_tracer().span("stream.gc") as span:
            for epoch, snap in list(self._snapshots.items()):
                if snap.reclaimed or epoch == self._current_epoch:
                    continue
                scanned += 1
                for token_id, token in list(snap.pins.items()):
                    if token.pid is not None and not _pid_alive(token.pid):
                        del snap.pins[token_id]
                if snap.pins:
                    continue
                self._reclaim(snap)
                reclaimed += 1
            if span is not None:
                span.annotate(scanned=scanned, reclaimed=reclaimed)
        if reclaimed:
            obs_metrics.get_hub().counter(
                "stream_epochs_reclaimed_total",
                help="superseded epoch snapshots reclaimed by gc",
            ).inc(reclaimed)
        return reclaimed

    def _reclaim(self, snap: Snapshot) -> None:
        if snap.shm_handle is not None:
            from repro.exec import shm

            shm.release_graph(snap.shm_handle)
            snap.shm_handle = None
        snap.reclaimed = True
        snap.graph = None  # type: ignore[assignment]
        self.reclaimed_epochs += 1

    def close(self) -> None:
        """Release every remaining publication, including the current
        epoch's.  The store is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for snap in self._snapshots.values():
            if not snap.reclaimed:
                self._reclaim(snap)
        self._snapshots.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise StreamError("EpochStore is closed")

    def __enter__(self) -> "EpochStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EpochStore(current_epoch={self._current_epoch}, "
            f"live={self.live_epochs()}, share={self.share})"
        )
