"""Dynamic graphs: epoch-tagged snapshots and incremental BFS repair.

The iBFS paper serves concurrent BFS over a static graph; this package
grows the reproduction toward the online reality where the graph
mutates while queries run.  Three layers:

* :mod:`repro.stream.overlay` — batched edge inserts/deletes on a
  frozen CSR, folded into a fresh CSR bit-identically to a
  from-scratch rebuild;
* :mod:`repro.stream.epoch` — refcounted, epoch-tagged immutable
  snapshots (optionally published over shared memory), each with its
  own content fingerprint so cache invalidation falls out of keying;
* :mod:`repro.stream.repair` — incremental depth-matrix repair for
  insert-only batches, bit-identical to re-traversal;
* :mod:`repro.stream.service` / :mod:`repro.stream.loadgen` — an
  epoch-aware :class:`~repro.stream.service.DynamicBFSServer` and a
  churn-capable load generator.
"""

from repro.stream.overlay import GraphOverlay, MutationBatch, apply_batch
from repro.stream.epoch import EpochStore, PinToken, Snapshot
from repro.stream.repair import (
    NOOP,
    RECOMPUTE,
    REPAIR,
    RepairConfig,
    RepairPlan,
    plan_repair,
    repair_depth_matrix,
)
from repro.stream.service import DynamicBFSServer, EpochRecord
from repro.stream.loadgen import (
    ChurnConfig,
    random_delete_batch,
    random_insert_batch,
    run_churn_loop,
)

__all__ = [
    "GraphOverlay",
    "MutationBatch",
    "apply_batch",
    "EpochStore",
    "PinToken",
    "Snapshot",
    "NOOP",
    "RECOMPUTE",
    "REPAIR",
    "RepairConfig",
    "RepairPlan",
    "plan_repair",
    "repair_depth_matrix",
    "DynamicBFSServer",
    "EpochRecord",
    "ChurnConfig",
    "random_insert_batch",
    "random_delete_batch",
    "run_churn_loop",
]
