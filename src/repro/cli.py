"""Command-line interface for the iBFS reproduction.

Subcommands mirror the workflows a user of the original system would
run:

* ``generate`` — build a synthetic graph and save it to disk;
* ``info`` — print structural statistics of a stored graph;
* ``run`` — concurrent BFS with a chosen engine, printing TEPS and
  profiler counters;
* ``plan`` — record the per-level traversal plan of one group, inspect
  it, export it as JSON, and replay it bit-identically;
* ``compare`` — the figure-15 engine ladder on one graph;
* ``groups`` — show the GroupBy partition for a source set;
* ``serve`` — drive the online serving layer with a closed-loop
  workload and print (or export) serving metrics;
* ``bench-serve`` — micro-batched vs one-request-one-traversal
  serving throughput on the same workload;
* ``mutate`` — apply an edge-mutation batch to a stored graph,
  report the repair-plan decision, and save the folded CSR;
* ``metrics-dump`` — re-render the metric records of a ``run --trace``
  JSONL file as Prometheus text exposition format;
* ``trace-report`` — attribute a recorded trace: top spans, per-wave
  waterfall + critical path, per-level rows, substrate comparison;
* ``slo`` — replay a recorded trace through the declarative SLO
  engine and report burn rates and breach/resolve alerts;
* ``bench-diff`` — compare two benchmark ledgers (new-schema or
  legacy ``BENCH_*.json``) and flag regressions;
* ``kernels`` — report which kernel backend (numba/cext/numpy) this
  host resolves and its warm-up cost.

Usage: ``python -m repro.cli <subcommand> --help`` (or the installed
``repro`` console script).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import (
    IBFS,
    IBFSConfig,
    NaiveConcurrentBFS,
    SequentialConcurrentBFS,
    benchmark_graph,
)
from repro.graph import (
    BENCHMARK_NAMES,
    CSRGraph,
    kronecker,
    load_csr,
    rmat,
    save_csr,
    uniform_random,
)
from repro.graph.properties import degree_stats, gini_coefficient
from repro.core.groupby import GroupByConfig, group_sources
from repro.plan import POLICY_NAMES, make_policy
from repro.plan.types import KERNEL_VARIANTS
from repro.runtime import SUBSTRATE_NAMES, SubstrateSpec, make_substrate


def _substrate_spec(args: argparse.Namespace) -> Optional[SubstrateSpec]:
    """One placement spec from the legacy flags (``--workers`` /
    ``--partitions`` / ``--churn`` stay aliases) plus ``--substrate``.
    Prints the capability error and returns None when the combination
    is invalid (callers exit 2)."""
    from repro.errors import SubstrateError

    try:
        return SubstrateSpec.from_flags(
            kind=getattr(args, "substrate", None),
            workers=getattr(args, "workers", 0),
            partitions=getattr(args, "partitions", 0),
            layout=getattr(args, "layout", "1d"),
            scheduler=getattr(args, "scheduler", "steal"),
            churn=getattr(args, "churn", 0) > 0,
        )
    except SubstrateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _load_graph(spec: str) -> CSRGraph:
    """Interpret a graph argument: a benchmark name or a saved CSR path."""
    if spec.upper() in BENCHMARK_NAMES:
        return benchmark_graph(spec)
    return load_csr(spec)


def _pick_sources(graph: CSRGraph, count: int, seed: int) -> List[int]:
    rng = np.random.default_rng(seed)
    count = min(count, graph.num_vertices)
    return sorted(
        rng.choice(graph.num_vertices, size=count, replace=False).tolist()
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "kronecker":
        graph = kronecker(args.scale, args.edge_factor, seed=args.seed)
    elif args.kind == "rmat":
        graph = rmat(args.scale, args.edge_factor, seed=args.seed)
    else:
        graph = uniform_random(1 << args.scale, args.edge_factor, seed=args.seed)
    save_csr(graph, args.output)
    print(
        f"wrote {args.kind} graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges -> {args.output}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = degree_stats(graph)
    print(f"vertices        : {graph.num_vertices}")
    print(f"directed edges  : {graph.num_edges}")
    print(f"average degree  : {graph.average_degree:.2f}")
    print(f"max degree      : {int(stats['max'])}")
    print(f"degree stddev   : {stats['std']:.2f}")
    print(f"degree gini     : {gini_coefficient(graph):.3f}")
    print(f"symmetric       : {graph.is_symmetric()}")
    print(f"csr bytes       : {graph.memory_bytes():,}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    sources = _pick_sources(graph, args.sources, args.seed)
    config = IBFSConfig(
        group_size=args.group_size,
        mode=args.mode,
        groupby=not args.no_groupby,
    )
    planner = None
    if args.policy:
        planner = make_policy(args.policy, kernel=args.kernel)
    elif args.kernel:
        planner = make_policy("heuristic", kernel=args.kernel)
    tracer = None
    if args.trace:
        from repro import obs

        tracer = obs.configure_tracing(process="cli")
        obs.configure_profiling(enabled=True)
    spec = _substrate_spec(args)
    if spec is None:
        return 2
    exec_config = None
    if spec.kind == "executor" or (
        spec.kind == "stream" and spec.inner_kind == "executor"
    ):
        from repro.exec import ExecConfig, FaultPolicy

        exec_config = ExecConfig(
            num_workers=spec.workers,
            scheduler=spec.scheduler,
            faults=FaultPolicy(fail_fast=args.fail_fast),
        )
    exec_stats = None
    dist_stats = None
    root = tracer.start_span("run", graph=args.graph,
                             sources=len(sources)) if tracer else None
    try:
        with make_substrate(
            spec,
            graph,
            engine_config=config,
            planner=planner,
            exec_config=exec_config,
        ) as substrate:
            result = substrate.run(sources, store_depths=False)
            if substrate.supports_partitions:
                dist_stats = substrate.last_stats
            elif substrate.supports_executor:
                exec_stats = substrate.last_stats
    finally:
        if tracer is not None:
            if root is not None:
                tracer.finish_span(root)
            from repro import obs

            lines = obs.write_jsonl(
                args.trace, obs.trace_records(tracer, obs.get_hub())
            )
            print(f"trace             : {args.trace} ({lines} records)")
    print(f"engine            : {result.engine}")
    print(f"instances         : {result.num_instances}")
    print(f"groups            : {len(result.groups)}")
    print(f"simulated runtime : {result.seconds * 1e3:.3f} ms")
    print(f"traversal rate    : {result.teps / 1e9:.2f} GTEPS")
    print(f"sharing degree    : {result.sharing_degree:.2f}")
    print(f"load transactions : {result.counters.global_load_transactions:,}")
    print(f"store transactions: {result.counters.global_store_transactions:,}")
    print(f"early terminations: {result.counters.early_terminations:,}")
    if exec_stats is not None:
        print(f"exec backend      : {exec_stats.backend} "
              f"({exec_stats.num_workers} workers, {exec_stats.scheduler})")
        print(f"wall clock        : {exec_stats.wall_seconds * 1e3:.1f} ms")
        print(f"steals/retries    : {exec_stats.steals}/{exec_stats.retries}")
        if exec_stats.degraded:
            print("warning           : pool lost; degraded to in-process")
    if dist_stats is not None:
        formats = ",".join(
            f"{fmt}:{count}"
            for fmt, count in sorted(dist_stats.formats().items())
        )
        print(f"dist backend      : {dist_stats.backend} "
              f"({dist_stats.layout} x {dist_stats.num_partitions})")
        print(f"exchange bytes    : {dist_stats.bytes_total:,} "
              f"({dist_stats.messages_total} messages)")
        print(f"exchange formats  : {formats or '-'}")
    return 0


def _summarize_directions(decision) -> str:
    td = decision.top_down
    bu = decision.bottom_up
    parts = []
    if td:
        parts.append(f"td:{td}")
    if bu:
        parts.append(f"bu:{bu}")
    return " ".join(parts) or "-"


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.plan import RunPlan

    graph = _load_graph(args.graph)
    count = min(args.sources, args.group_size)
    group = _pick_sources(graph, count, args.seed)
    config = IBFSConfig(group_size=args.group_size, mode=args.mode)
    engine = IBFS(
        graph, config, planner=make_policy(args.policy, kernel=args.kernel)
    )

    replay_plan = None
    if args.replay:
        with open(args.replay) as fh:
            replay_plan = RunPlan.from_json(fh.read())

    result = engine.run_group(group, max_depth=args.max_depth, plan=replay_plan)
    plan = result.groups[0].plan

    print(f"graph       : {args.graph}")
    print(f"group       : {len(group)} sources (seed {args.seed})")
    print(f"engine      : {plan.engine}")
    print(f"policy      : {plan.policy}"
          + ("  (replayed)" if replay_plan is not None else ""))
    print(f"levels      : {len(plan)}")
    print(f"{'level':<7}{'directions':<16}{'kernel':<9}{'vw':<4}"
          f"{'snapshot':<10}{'early-term':<10}")
    for level, decision in enumerate(plan):
        print(
            f"{level:<7}{_summarize_directions(decision):<16}"
            f"{decision.kernel:<9}{decision.vector_width:<4}"
            f"{decision.snapshot:<10}"
            f"{'on' if decision.early_termination else 'off':<10}"
        )
    print(f"simulated runtime : {result.seconds * 1e3:.3f} ms")
    if replay_plan is not None:
        matches = plan == replay_plan
        print(f"replay plan match : {'ok' if matches else 'DIVERGED'}")
        if not matches:
            return 1
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(plan.to_json())
        print(f"exported plan     : {args.export}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    sources = _pick_sources(graph, args.sources, args.seed)
    engines = {
        "sequential": SequentialConcurrentBFS(graph),
        "naive": NaiveConcurrentBFS(graph),
        "joint": IBFS(
            graph,
            IBFSConfig(group_size=args.group_size, mode="joint", groupby=False),
        ),
        "bitwise": IBFS(
            graph,
            IBFSConfig(group_size=args.group_size, mode="bitwise", groupby=False),
        ),
        "groupby": IBFS(
            graph,
            IBFSConfig(group_size=args.group_size, mode="bitwise", groupby=True),
        ),
    }
    baseline = None
    print(f"{'engine':<12}{'GTEPS':>8}{'ms':>10}{'speedup':>9}")
    for label, engine in engines.items():
        result = engine.run(sources, store_depths=False)
        if baseline is None:
            baseline = result.seconds
        print(
            f"{label:<12}{result.teps / 1e9:>8.2f}"
            f"{result.seconds * 1e3:>10.3f}"
            f"{baseline / result.seconds:>8.2f}x"
        )
    return 0


def cmd_groups(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    sources = _pick_sources(graph, args.sources, args.seed)
    groups = group_sources(
        graph, sources, args.group_size, GroupByConfig(q=args.q)
    )
    degrees = graph.out_degrees()
    print(f"{len(sources)} sources -> {len(groups)} groups "
          f"(group size {args.group_size}, q={args.q})")
    for i, members in enumerate(groups):
        mean_deg = float(np.mean([degrees[s] for s in members]))
        print(
            f"  group {i:>3}: {len(members):>3} sources, "
            f"mean outdegree {mean_deg:.1f}"
        )
    return 0


def cmd_sssp(args: argparse.Namespace) -> int:
    from repro.bfs.sssp import DeltaStepping, dijkstra
    from repro.graph.weighted import with_random_weights

    graph = _load_graph(args.graph)
    weighted = with_random_weights(
        graph, low=args.min_weight, high=args.max_weight, seed=args.seed
    )
    source = args.source
    if source is None:
        source = int(graph.out_degrees().argmax())
    result = DeltaStepping(weighted, delta=args.delta).run(source)
    exact = dijkstra(weighted, source)
    assert np.allclose(result.distances, exact, equal_nan=True)
    finite = np.isfinite(result.distances)
    print(f"source            : {source}")
    print(f"reached           : {int(finite.sum())} / {graph.num_vertices}")
    if finite.any():
        print(f"max distance      : {result.distances[finite].max():.3f}")
    print(f"relaxations       : {result.relaxations:,}")
    print(f"simulated runtime : {result.seconds * 1e3:.3f} ms")
    print("verified against Dijkstra: ok")
    return 0


def _serving_config(args: argparse.Namespace) -> "ServingConfig":
    from repro.service import ServingConfig

    return ServingConfig(
        batch_size=args.batch_size,
        flush_deadline=args.deadline_us * 1e-6,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
        num_devices=args.devices,
        groupby=not args.no_groupby,
        partitions=getattr(args, "partitions", 0),
        partition_layout=getattr(args, "layout", "1d"),
    )


def _workload_config(args: argparse.Namespace) -> "WorkloadConfig":
    from repro.service import WorkloadConfig

    return WorkloadConfig(
        num_requests=args.requests,
        num_clients=args.clients,
        zipf_exponent=args.zipf,
        kind=args.kind,
        max_depth=args.max_depth,
        seed=args.seed,
    )


def _print_load_result(label: str, result) -> None:
    lat = result.metrics["latency_seconds"]
    batches = result.metrics["batches"]
    cache = result.metrics["cache"]
    print(f"{label}")
    print(f"  completed         : {result.completed} "
          f"(shed {result.shed}, errored {result.errored})")
    print(f"  simulated elapsed : {result.elapsed * 1e3:.3f} ms")
    print(f"  throughput        : {result.throughput / 1e3:.1f}k req/s")
    print(f"  latency p50/p99   : {lat['p50'] * 1e6:.1f} / "
          f"{lat['p99'] * 1e6:.1f} us")
    print(f"  batches           : {batches['count']} "
          f"(occupancy {batches['mean_occupancy']:.2f}, "
          f"sharing degree {batches['mean_sharing_degree']:.2f})")
    print(f"  cache hit rate    : {cache['hit_rate']:.2f} "
          f"({cache['hits']} hits, {cache['evictions']} evictions)")


def _churn_config(args: argparse.Namespace) -> "ChurnConfig":
    from repro.stream import ChurnConfig

    return ChurnConfig(
        mutate_every=args.churn,
        inserts_per_batch=args.churn_inserts,
        deletes_per_batch=args.churn_deletes,
        seed=args.seed + 1,
    )


def _print_epoch_summary(metrics: dict) -> None:
    epochs = metrics["epochs"]
    print(f"  epochs published  : {epochs['published']} "
          f"({epochs['repairs']} repaired, "
          f"{epochs['recomputes']} recomputed)")
    print(f"  cache across swaps: {epochs['rows_repaired']} rows repaired, "
          f"{epochs['rows_dropped']} dropped, "
          f"{epochs['plans_purged']} plans purged")


def _make_slo_engine(args: argparse.Namespace):
    """SLO engine for ``serve --slo`` (hub-wired default specs)."""
    if not getattr(args, "slo", False):
        return None
    from repro import obs

    return obs.SLOEngine(hub=obs.get_hub())


def _print_slo_summary(engine) -> None:
    if engine is None:
        return
    breaches = sum(1 for a in engine.alerts if a.kind == "breach")
    breached_now = sum(
        1 for s in engine._last_status if s.breached
    )
    print(f"  slo               : {len(engine.specs)} specs, "
          f"{breaches} breach alerts, {breached_now} currently breached")


def _maybe_write_trace(args: argparse.Namespace, tracer) -> None:
    if tracer is None:
        return
    from repro import obs

    lines = obs.write_jsonl(
        args.trace, obs.trace_records(tracer, obs.get_hub())
    )
    print(f"  trace             : {args.trace} ({lines} records)")


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import BFSServer, run_closed_loop

    graph = _load_graph(args.graph)
    serving = _serving_config(args)
    tracer = None
    if getattr(args, "trace", None):
        from repro import obs

        tracer = obs.configure_tracing(process="serve")
        obs.configure_profiling(enabled=True)
    spec = _substrate_spec(args)
    if spec is None:
        return 2
    slo_engine = _make_slo_engine(args)
    planner = make_policy(args.policy) if args.policy else None
    if args.churn > 0 or spec.kind == "stream":
        from repro.stream import DynamicBFSServer, run_churn_loop

        server = DynamicBFSServer(
            graph, serving, planner=planner, slo=slo_engine,
            substrate=spec,
        )
        try:
            result, _ = run_churn_loop(
                server, _workload_config(args), _churn_config(args)
            )
            exec_stats = (
                server.executor.last_stats
                if server.executor is not None else None
            )
        finally:
            server.close()
        _print_load_result(
            f"served {args.requests} {args.kind} requests with churn "
            f"(mutation every {args.churn} completions: "
            f"+{args.churn_inserts}/-{args.churn_deletes} edges)",
            result,
        )
        _print_epoch_summary(result.metrics)
        if exec_stats is not None:
            print(f"  exec backend      : {exec_stats.backend} "
                  f"({exec_stats.num_workers} workers, "
                  f"{exec_stats.scheduler})")
        _print_slo_summary(slo_engine)
        if args.metrics_json:
            import json

            with open(args.metrics_json, "w") as fh:
                json.dump(result.metrics, fh, indent=2)
            print(f"  metrics json      : {args.metrics_json}")
        _maybe_write_trace(args, tracer)
        return 0
    server = None
    exec_stats = None
    try:
        server = BFSServer(
            graph, serving, planner=planner, slo=slo_engine,
            substrate=spec,
        )
        result = run_closed_loop(server, _workload_config(args))
        exec_stats = (
            server.executor.last_stats
            if server.executor is not None else None
        )
    finally:
        if server is not None:
            server.close()
    _print_load_result(
        f"served {args.requests} {args.kind} requests "
        f"({args.clients} closed-loop clients, zipf {args.zipf})",
        result,
    )
    if exec_stats is not None:
        print(f"  exec backend      : {exec_stats.backend} "
              f"({exec_stats.num_workers} workers, {exec_stats.scheduler})")
    _print_slo_summary(slo_engine)
    if args.metrics_json:
        import json

        with open(args.metrics_json, "w") as fh:
            json.dump(result.metrics, fh, indent=2)
        print(f"  metrics json      : {args.metrics_json}")
    _maybe_write_trace(args, tracer)
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.service import compare_serving

    graph = _load_graph(args.graph)
    planner = make_policy(args.policy) if args.policy else None
    spec = _substrate_spec(args)
    if spec is None:
        return 2
    if args.churn > 0:
        from repro.service.loadgen import naive_config
        from repro.stream import DynamicBFSServer, run_churn_loop

        serving = _serving_config(args)
        results = {}
        for label, config in (
            ("batched", serving), ("naive", naive_config(serving))
        ):
            server = DynamicBFSServer(
                graph, config, planner=planner, substrate=spec
            )
            try:
                results[label], _ = run_churn_loop(
                    server, _workload_config(args), _churn_config(args)
                )
            finally:
                server.close()
        _print_load_result("micro-batched serving under churn",
                           results["batched"])
        _print_epoch_summary(results["batched"].metrics)
        _print_load_result("naive serving under churn", results["naive"])
        naive_tput = results["naive"].throughput
        speedup = (
            results["batched"].throughput / naive_tput
            if naive_tput > 0 else 0.0
        )
        print(f"throughput speedup  : {speedup:.2f}x")
        return 0
    comparison = compare_serving(
        graph, _workload_config(args), _serving_config(args), planner=planner
    )
    _print_load_result("micro-batched serving", comparison["batched"])
    _print_load_result("naive serving (one request, one traversal)",
                       comparison["naive"])
    print(f"throughput speedup  : {comparison['speedup']:.2f}x")
    return 0


def _parse_edge_pairs(specs: List[str]) -> "tuple":
    src: List[int] = []
    dst: List[int] = []
    for spec in specs:
        try:
            a, b = spec.split(":")
            src.append(int(a))
            dst.append(int(b))
        except ValueError:
            raise SystemExit(
                f"error: bad edge spec {spec!r}; expected SRC:DST"
            )
    return np.asarray(src), np.asarray(dst)


def cmd_mutate(args: argparse.Namespace) -> int:
    from repro.graph import save_csr
    from repro.stream import (
        GraphOverlay,
        plan_repair,
        random_delete_batch,
        random_insert_batch,
    )

    graph = _load_graph(args.graph)
    overlay = GraphOverlay(graph)
    rng = np.random.default_rng(args.seed)
    if args.insert:
        overlay.insert_edges(*_parse_edge_pairs(args.insert))
    if args.delete:
        overlay.delete_edges(*_parse_edge_pairs(args.delete))
    if args.random_inserts:
        overlay.insert_edges(
            *random_insert_batch(graph.num_vertices, args.random_inserts, rng)
        )
    if args.random_deletes:
        overlay.delete_edges(
            *random_delete_batch(graph, args.random_deletes, rng)
        )
    if not overlay.has_pending:
        print("error: nothing to mutate (pass --insert/--delete or "
              "--random-inserts/--random-deletes)", file=sys.stderr)
        return 2
    batch = overlay.pending_batch()
    folded = overlay.compact()
    plan = plan_repair(batch, folded)
    print(f"graph             : {args.graph}")
    print(f"mutation batch    : +{batch.num_inserts} inserts, "
          f"-{batch.num_deletes} deletes")
    print(f"edges             : {graph.num_edges:,} -> {folded.num_edges:,}")
    print(f"repair plan       : {plan.decision} ({plan.reason})")
    if args.out:
        save_csr(folded, args.out)
        print(f"folded CSR        : {args.out}")
    return 0


def cmd_metrics_dump(args: argparse.Namespace) -> int:
    from repro import obs

    records = obs.read_jsonl(args.trace)
    metrics = obs.metrics_only(records)
    if not metrics:
        print(f"no metric records in {args.trace}", file=sys.stderr)
        return 1
    sys.stdout.write(obs.render_prometheus(metrics))
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    from repro import obs

    # Streamed: the JSONL parses incrementally and only span/metric
    # records are retained for attribution.
    records = [
        r for r in obs.iter_jsonl(args.trace)
        if r.get("kind") in ("span", "metric")
    ]
    if not any(r.get("kind") == "span" for r in records):
        print(f"no span records in {args.trace}", file=sys.stderr)
        return 1
    sys.stdout.write(
        obs.render_trace_report(
            records,
            top=args.top,
            max_waves=args.max_waves,
            max_levels=args.max_levels,
        )
    )
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro import obs

    specs = obs.load_slo_specs(args.specs) if args.specs else None
    engine = obs.SLOEngine(specs)
    obs.replay_trace(obs.iter_jsonl(args.trace), engine)
    sys.stdout.write(obs.render_slo_report(engine))
    if args.check and any(a.kind == "breach" for a in engine.alerts):
        print("slo check failed: breach alerts were emitted",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro import obs

    old = obs.load_ledger(args.old)
    new = obs.load_ledger(args.new)
    diff = obs.diff_ledgers(old, new, tolerance=args.tolerance)
    sys.stdout.write(
        obs.render_diff(diff, old_label=args.old, new_label=args.new)
    )
    if diff.regressions:
        print(f"bench-diff: {len(diff.regressions)} regression(s) "
              f"beyond {args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    """Report which kernel backend this host actually runs."""
    import repro.native as native

    if args.warmup:
        native.warmup()
    report = native.capability_report()
    numba = report["numba"]
    warm = report["warmup_seconds"]
    print(f"native backend  : "
          f"{report['backend'] or 'unavailable'}")
    if not report["enabled"]:
        print(f"reason          : {report['reason']}")
    print(f"numba           : "
          f"{numba if numba is not None else 'not installed'}")
    print(f"c compiler      : {report['compiler'] or 'not found'}")
    print(f"kernel='auto'   : resolves to {report['auto_kernel']!r}")
    print(f"warm-up         : "
          + (f"{warm * 1e3:.1f} ms" if warm is not None else
             "not run (pass --warmup)"))
    return 0


def cmd_topk(args: argparse.Namespace) -> int:
    from repro.apps.topk_closeness import top_k_closeness

    graph = _load_graph(args.graph)
    ranking = top_k_closeness(graph, args.k)
    degrees = graph.out_degrees()
    print(f"top-{args.k} closeness on {args.graph}:")
    for rank, (vertex, score) in enumerate(ranking, start=1):
        print(
            f"  {rank:>2}. vertex {vertex:>6}  closeness={score:.4f}  "
            f"degree={int(degrees[vertex])}"
        )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iBFS reproduction: concurrent BFS on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("--kind", choices=("kronecker", "rmat", "uniform"),
                     default="kronecker")
    gen.add_argument("--scale", type=int, default=12,
                     help="log2 of the vertex count")
    gen.add_argument("--edge-factor", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", required=True, help="output .csr path")
    gen.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph", help="benchmark name (FB, KG0, ...) or .csr path")
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run", help="run concurrent BFS with iBFS")
    run.add_argument("graph")
    run.add_argument("--sources", type=int, default=128)
    run.add_argument("--group-size", type=int, default=32)
    run.add_argument("--mode", choices=("bitwise", "joint"), default="bitwise")
    run.add_argument("--no-groupby", action="store_true")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--substrate", choices=SUBSTRATE_NAMES, default=None,
                     help="execution substrate (default: derived — "
                          "--partitions selects partitioned, --workers "
                          "executor, else serial)")
    run.add_argument("--workers", type=int, default=0,
                     help="worker processes for the real execution "
                          "backend (0 = in-process, the default)")
    run.add_argument("--partitions", type=int, default=0,
                     help="split the graph across this many partitions "
                          "and traverse with the distributed engine "
                          "(0 = whole-graph, the default)")
    run.add_argument("--layout", choices=("1d", "2d"), default="1d",
                     help="partition layout (with --partitions)")
    run.add_argument("--scheduler", choices=("steal", "lpt", "round_robin"),
                     default="steal",
                     help="group dispatch policy (with --workers)")
    run.add_argument("--fail-fast", action="store_true",
                     help="raise on the first worker fault instead of "
                          "retrying within the fault budget")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="enable tracing + profiling and write the "
                          "span/metric trace as JSON lines to PATH")
    run.add_argument("--policy", choices=POLICY_NAMES, default=None,
                     help="traversal planner policy (default: the "
                          "engine's heuristic policy)")
    run.add_argument("--kernel", choices=KERNEL_VARIANTS, default=None,
                     help="bottom-up kernel variant (default: auto — "
                          "the compiled backend when available)")
    run.set_defaults(func=cmd_run)

    plan = sub.add_parser(
        "plan",
        help="record, inspect, export, and replay a traversal plan",
    )
    plan.add_argument("graph")
    plan.add_argument("--sources", type=int, default=32,
                      help="sources in the (single) planned group")
    plan.add_argument("--group-size", type=int, default=32)
    plan.add_argument("--mode", choices=("bitwise", "joint"),
                      default="bitwise")
    plan.add_argument("--policy", choices=POLICY_NAMES, default="heuristic")
    plan.add_argument("--kernel", choices=KERNEL_VARIANTS, default=None,
                      help="bottom-up kernel variant recorded in the plan")
    plan.add_argument("--seed", type=int, default=42)
    plan.add_argument("--max-depth", type=int, default=None)
    plan.add_argument("--export", default=None, metavar="PATH",
                      help="write the recorded plan as JSON")
    plan.add_argument("--replay", default=None, metavar="PATH",
                      help="replay a previously exported plan (skips the "
                           "planner heuristics) and verify it re-records "
                           "identically")
    plan.set_defaults(func=cmd_plan)

    cmp_ = sub.add_parser("compare", help="figure-15 style engine ladder")
    cmp_.add_argument("graph")
    cmp_.add_argument("--sources", type=int, default=128)
    cmp_.add_argument("--group-size", type=int, default=32)
    cmp_.add_argument("--seed", type=int, default=42)
    cmp_.set_defaults(func=cmd_compare)

    grp = sub.add_parser("groups", help="show the GroupBy partition")
    grp.add_argument("graph")
    grp.add_argument("--sources", type=int, default=128)
    grp.add_argument("--group-size", type=int, default=32)
    grp.add_argument("--q", type=int, default=128)
    grp.add_argument("--seed", type=int, default=42)
    grp.set_defaults(func=cmd_groups)

    sssp = sub.add_parser(
        "sssp", help="weighted SSSP (delta-stepping, Dijkstra-verified)"
    )
    sssp.add_argument("graph")
    sssp.add_argument("--source", type=int, default=None,
                      help="default: highest-outdegree vertex")
    sssp.add_argument("--delta", type=float, default=None)
    sssp.add_argument("--min-weight", type=float, default=1.0)
    sssp.add_argument("--max-weight", type=float, default=10.0)
    sssp.add_argument("--seed", type=int, default=42)
    sssp.set_defaults(func=cmd_sssp)

    topk = sub.add_parser("topk", help="top-k closeness centrality")
    topk.add_argument("graph")
    topk.add_argument("--k", type=int, default=10)
    topk.set_defaults(func=cmd_topk)

    kern = sub.add_parser(
        "kernels",
        help="report the resolved kernel backend (numba/cext/numpy)",
    )
    kern.add_argument("--warmup", action="store_true",
                      help="compile/load the backend and time the warm-up")
    kern.set_defaults(func=cmd_kernels)

    mdump = sub.add_parser(
        "metrics-dump",
        help="render a trace file's metric records as Prometheus text",
    )
    mdump.add_argument("trace", help="JSONL trace written by `run --trace`")
    mdump.set_defaults(func=cmd_metrics_dump)

    treport = sub.add_parser(
        "trace-report",
        help="attribute a recorded trace: top spans, per-wave waterfall "
             "and critical path, substrate comparison",
    )
    treport.add_argument(
        "trace", help="JSONL trace written by `run --trace` or "
        "`serve --trace`"
    )
    treport.add_argument("--top", type=int, default=12,
                         help="rows in the top-spans table")
    treport.add_argument("--max-waves", type=int, default=8,
                         help="serving waves detailed individually")
    treport.add_argument("--max-levels", type=int, default=12,
                         help="per-level rows shown per wave")
    treport.set_defaults(func=cmd_trace_report)

    slo = sub.add_parser(
        "slo",
        help="replay a recorded trace through the SLO engine and report "
             "burn rates and breach/resolve alerts",
    )
    slo.add_argument(
        "trace", help="JSONL trace written by `serve --trace`"
    )
    slo.add_argument("--specs", default=None, metavar="PATH",
                     help="JSON file of SLO specs (default: the built-in "
                          "latency/error/queue/staleness objectives)")
    slo.add_argument("--check", action="store_true",
                     help="exit 1 if any breach alert fires during replay")
    slo.set_defaults(func=cmd_slo)

    bdiff = sub.add_parser(
        "bench-diff",
        help="compare two benchmark ledgers (new-schema or legacy "
             "BENCH_*.json) and flag regressions",
    )
    bdiff.add_argument("old", help="baseline ledger path")
    bdiff.add_argument("new", help="candidate ledger path")
    bdiff.add_argument("--tolerance", type=float, default=0.05,
                       help="fractional band a metric may move before "
                            "being flagged (default 0.05)")
    bdiff.set_defaults(func=cmd_bench_diff)

    def add_serving_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph")
        p.add_argument("--requests", type=int, default=512,
                       help="total requests the clients issue")
        p.add_argument("--clients", type=int, default=64,
                       help="closed-loop clients")
        p.add_argument("--zipf", type=float, default=1.1,
                       help="source-popularity Zipf exponent")
        p.add_argument("--kind", choices=("bfs", "closeness"), default="bfs")
        p.add_argument("--max-depth", type=int, default=None)
        p.add_argument("--batch-size", type=int, default=32,
                       help="max traversal sources per batch (paper N)")
        p.add_argument("--deadline-us", type=float, default=20.0,
                       help="flush deadline in simulated microseconds")
        p.add_argument("--queue-capacity", type=int, default=256)
        p.add_argument("--cache-capacity", type=int, default=4096)
        p.add_argument("--devices", type=int, default=1)
        p.add_argument("--no-groupby", action="store_true",
                       help="form batches FIFO instead of by GroupBy rules")
        p.add_argument("--policy", choices=POLICY_NAMES, default=None,
                       help="traversal planner policy (default: the "
                            "engine's heuristic policy)")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--churn", type=int, default=0, metavar="N",
                       help="mutate the graph every N completed requests "
                            "(0 = static graph, the default)")
        p.add_argument("--churn-inserts", type=int, default=8,
                       help="edge inserts per mutation batch (with --churn)")
        p.add_argument("--churn-deletes", type=int, default=0,
                       help="edge deletes per mutation batch (with --churn; "
                            "deletes force full cache recomputation)")
        p.add_argument("--substrate", choices=SUBSTRATE_NAMES, default=None,
                       help="execution substrate (default: derived — "
                            "--partitions selects partitioned, --workers "
                            "executor, --churn stream, else serial)")

    serve = sub.add_parser(
        "serve", help="run the online serving layer under a closed-loop load"
    )
    add_serving_args(serve)
    serve.add_argument("--metrics-json", default=None,
                       help="write the metrics snapshot to this path")
    serve.add_argument("--workers", type=int, default=0,
                       help="execute batches on a worker-process pool "
                            "(0 = in-process, the default)")
    serve.add_argument("--scheduler",
                       choices=("steal", "lpt", "round_robin"),
                       default="steal",
                       help="group dispatch policy (with --workers)")
    serve.add_argument("--partitions", type=int, default=0,
                       help="serve batches on the partitioned engine "
                            "over this many graph partitions (0 = "
                            "whole-graph, the default)")
    serve.add_argument("--layout", choices=("1d", "2d"), default="1d",
                       help="partition layout (with --partitions)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="enable tracing + profiling and write the "
                            "serve trace as JSON lines to PATH")
    serve.add_argument("--slo", action="store_true",
                       help="evaluate the built-in SLOs live against the "
                            "workload and include them in the metrics "
                            "snapshot")
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "bench-serve",
        help="micro-batched vs one-request-one-traversal serving throughput",
    )
    add_serving_args(bench)
    bench.set_defaults(func=cmd_bench_serve)

    mut = sub.add_parser(
        "mutate",
        help="apply an edge-mutation batch to a graph and save the "
             "folded CSR",
    )
    mut.add_argument("graph")
    mut.add_argument("--insert", action="append", default=[],
                     metavar="SRC:DST", help="insert one directed edge "
                     "(repeatable)")
    mut.add_argument("--delete", action="append", default=[],
                     metavar="SRC:DST", help="delete every copy of one "
                     "directed edge (repeatable)")
    mut.add_argument("--random-inserts", type=int, default=0,
                     help="additionally insert this many random edges")
    mut.add_argument("--random-deletes", type=int, default=0,
                     help="additionally delete this many existing edges, "
                          "sampled uniformly")
    mut.add_argument("--seed", type=int, default=42,
                     help="seed for the random edge batches")
    mut.add_argument("--out", default=None,
                     help="write the folded CSR to this path")
    mut.set_defaults(func=cmd_mutate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
