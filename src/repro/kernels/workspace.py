"""Zero-copy level bookkeeping: the dirty-row BSA snapshot.

The reference bitwise engine keeps ``BSA_k`` by copying the whole
``(num_vertices, lanes)`` array at the top of every level, even though a
level typically rewrites a small fraction of the rows.  A
:class:`LevelWorkspace` replaces the copy with *dirty-row* bookkeeping:

* before a row is first written in a level, its pre-level value is
  stashed (``stash_rows``);
* any reader that needs ``BSA_k[v]`` for arbitrary ``v`` goes through
  ``snapshot_rows``, which patches stashed values over the live array;
* frontier identification asks for exactly the rows whose value changed
  (``changed``), which is the dirty set filtered by a row-wise XOR.

All buffers are preallocated and reused: ``begin_level`` resets only the
entries the previous level dirtied, so steady-state levels allocate
nothing beyond numpy temporaries proportional to the touched rows.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class LevelWorkspace:
    """Reusable per-level buffers for one (num_vertices, lanes) BSA."""

    __slots__ = ("num_vertices", "lanes", "_dirty_pos", "_dirty_rows", "_saved", "_num_dirty")

    def __init__(self, num_vertices: int, lanes: int) -> None:
        self.num_vertices = num_vertices
        self.lanes = lanes
        #: Row -> stash position, -1 while clean this level.
        self._dirty_pos = np.full(num_vertices, -1, dtype=np.int64)
        capacity = 256
        self._dirty_rows = np.empty(capacity, dtype=np.int64)
        self._saved = np.empty((capacity, lanes), dtype=np.uint64)
        self._num_dirty = 0

    @property
    def num_dirty(self) -> int:
        """Rows stashed so far this level."""
        return self._num_dirty

    def begin_level(self, words: np.ndarray = None) -> None:
        """Reset the dirty set (touches only previously dirty entries).

        ``words`` is accepted for interface parity with
        :class:`FullSnapshotWorkspace` and ignored — the dirty strategy
        snapshots lazily, row by row.
        """
        if self._num_dirty:
            self._dirty_pos[self._dirty_rows[: self._num_dirty]] = -1
        self._num_dirty = 0

    def _ensure(self, capacity: int) -> None:
        current = self._dirty_rows.size
        if capacity <= current:
            return
        new = max(capacity, current * 2)
        rows = np.empty(new, dtype=np.int64)
        rows[: self._num_dirty] = self._dirty_rows[: self._num_dirty]
        saved = np.empty((new, self.lanes), dtype=np.uint64)
        saved[: self._num_dirty] = self._saved[: self._num_dirty]
        self._dirty_rows = rows
        self._saved = saved

    def stash_rows(self, words: np.ndarray, rows: np.ndarray) -> None:
        """Record pre-write values of ``rows`` (unique within one call).

        Rows already stashed this level keep their first (pre-level)
        value; call this *before* writing the rows.
        """
        rows = np.asarray(rows)
        if rows.size == 0:
            return
        fresh = rows[self._dirty_pos[rows] < 0]
        if fresh.size == 0:
            return
        end = self._num_dirty + fresh.size
        self._ensure(end)
        self._dirty_rows[self._num_dirty : end] = fresh
        self._saved[self._num_dirty : end] = words[fresh]
        self._dirty_pos[fresh] = np.arange(self._num_dirty, end, dtype=np.int64)
        self._num_dirty = end

    def snapshot_source(self, words: np.ndarray) -> Tuple:
        """Raw-array description of this level's ``BSA_k`` fetch.

        The compiled backend (:mod:`repro.native`) cannot call
        :meth:`snapshot_rows` per probe, so it receives the arrays the
        gather would read instead: ``("direct", words)`` while nothing
        is dirty (every row reads through to the live array), or
        ``("dirty", words, dirty_pos, saved)`` where rows with
        ``dirty_pos[v] >= 0`` take their pre-level value from
        ``saved[dirty_pos[v]]`` — exactly the patching
        :meth:`snapshot_rows` performs.  The trailing element is the
        dirty row list aligned with ``saved`` (``saved[j]`` is row
        ``rows[j]``'s pre-level value), letting the backend patch the
        stash in bulk instead of gathering ``dirty_pos`` per probe.
        The returned arrays are live views; consume them before the
        next ``stash_rows`` call.
        """
        if self._num_dirty == 0:
            return ("direct", words)
        k = self._num_dirty
        return (
            "dirty",
            words,
            self._dirty_pos,
            self._saved[:k],
            self._dirty_rows[:k],
        )

    def snapshot_rows(self, words: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Pre-level (``BSA_k``) values of arbitrary ``rows``.

        Clean rows read through to the live array; dirty rows come from
        the stash.  Always returns a fresh array safe to mutate.
        """
        if self.lanes == 1:
            # Single-lane rows are scalars: a flat ``take`` beats the
            # generic per-row gather by a wide margin.
            out = np.take(words.reshape(-1), rows)[:, None]
        else:
            out = words[rows]
        if self._num_dirty == 0:
            return out
        pos = np.take(self._dirty_pos, rows)
        hit = pos >= 0
        if hit.any():
            out[hit] = self._saved[pos[hit]]
        return out

    def changed(self, words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rows whose live value differs from their stashed snapshot.

        Returns ``(rows, diff)`` where ``diff[i] = words[rows[i]] ^
        BSA_k[rows[i]]`` is non-zero for every returned row — exactly
        the set (and values) a full-array XOR against a complete
        snapshot would find.
        """
        k = self._num_dirty
        if k == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty((0, self.lanes), dtype=np.uint64)
        rows = self._dirty_rows[:k]
        diff = words[rows] ^ self._saved[:k]
        nonzero = np.any(diff != 0, axis=1)
        return rows[nonzero], diff[nonzero]


class FullSnapshotWorkspace:
    """Whole-array ``BSA_k`` snapshot — the reference bookkeeping.

    The planner's ``snapshot="full"`` strategy: ``begin_level`` copies
    the entire status array, per-row stashing becomes a no-op, and
    ``changed`` is one full XOR.  Same frontiers and counters as the
    dirty-row stash (every consumer of ``changed`` is order-independent),
    but O(num_vertices) work per level regardless of how few rows the
    level touched — the right trade on dense levels, where the dirty set
    approaches the whole array anyway.
    """

    __slots__ = ("num_vertices", "lanes", "_snapshot", "_primed")

    def __init__(self, num_vertices: int, lanes: int) -> None:
        self.num_vertices = num_vertices
        self.lanes = lanes
        self._snapshot = np.zeros((num_vertices, lanes), dtype=np.uint64)
        self._primed = False

    def begin_level(self, words: np.ndarray = None) -> None:
        """Copy the live array as this level's ``BSA_k``."""
        if words is None:
            raise ValueError(
                "FullSnapshotWorkspace.begin_level needs the live array"
            )
        np.copyto(self._snapshot, words)
        self._primed = True

    def stash_rows(self, words: np.ndarray, rows: np.ndarray) -> None:
        """No-op: the full snapshot already holds every pre-level row."""

    def snapshot_source(self, words: np.ndarray) -> Tuple:
        """Raw-array ``BSA_k`` fetch: the snapshot is always direct."""
        return ("direct", self._snapshot)

    def snapshot_rows(self, words: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Pre-level (``BSA_k``) values of arbitrary ``rows``."""
        if self.lanes == 1:
            return np.take(self._snapshot.reshape(-1), rows)[:, None]
        return self._snapshot[rows]

    def changed(self, words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rows whose live value differs from the level snapshot."""
        if not self._primed:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty((0, self.lanes), dtype=np.uint64)
        diff = words ^ self._snapshot
        rows = np.flatnonzero(np.any(diff != 0, axis=1)).astype(np.int64)
        return rows, diff[rows]
