"""Instance-vectorized per-level bookkeeping.

Joint engines need, at the end of every level and for every instance
``j``: the new-frontier count, the sum of out-degrees over the new
frontier, and the count of still-unexplored edges.  Computing these with
a per-``j`` Python loop costs ``group_size`` full passes over the depth
matrix per level; the helpers here produce all instances' values in one
vectorized pass each.

The bit-matrix helpers translate between packed uint64 status lanes and
per-instance columns: uint64 lanes are little-endian on every supported
platform, so unpacked bit ``j`` of a row is exactly instance ``j``'s
bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.native as native


def unpack_lane_bits(
    words: np.ndarray, group_size: int, trim: bool = True
) -> np.ndarray:
    """``(rows, group_size)`` 0/1 matrix from ``(rows, lanes)`` uint64 words.

    Column ``j`` holds instance ``j``'s bit of each row.  ``trim=False``
    keeps the full ``lanes * 64`` columns (a contiguous result) for
    callers that know the padding bits are never set.
    """
    if words.size == 0:
        width = group_size if trim else words.shape[1] * 64 if words.ndim == 2 else 64
        return np.zeros((0, width), dtype=np.uint8)
    as_bytes = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    bits = np.unpackbits(
        as_bytes.reshape(words.shape[0], -1), axis=1, bitorder="little"
    )
    return bits[:, :group_size] if trim else bits


#: ``_BYTE_BITS[k, v]`` is bit ``k`` of byte value ``v`` — turns a byte
#: histogram into per-bit counts with one tiny matmul.
_BYTE_BITS = ((np.arange(256)[None, :] >> np.arange(8)[:, None]) & 1).astype(
    np.int64
)


def per_bit_counts(
    words: np.ndarray, group_size: int, *, kernel: Optional[str] = None
) -> np.ndarray:
    """Column sums of the bit matrix encoded by ``(rows, lanes)`` words.

    ``out[j]`` is the number of rows whose instance-``j`` bit is set.
    Implemented as one histogram per byte (or, for tall inputs, uint16)
    position folded through a bit table — the histogram loop visits each
    input element once instead of materializing the 8x-larger unpacked
    bit matrix, so halving the element count by histogramming two bytes
    at a time wins as soon as the rows outweigh the 65536-bin reset.

    ``kernel`` (a :data:`repro.plan.types.KERNEL_VARIANTS` entry) routes
    the tally through the compiled backend when it resolves; bit-count
    sums are order-free, so the result is bit-identical either way.
    """
    if words.size == 0:
        return np.zeros(group_size, dtype=np.int64)
    if kernel is not None and native.effective(kernel):
        return native.per_bit_counts(words, group_size)
    rows = words.shape[0]
    contig = np.ascontiguousarray(words, dtype=np.uint64)
    if rows >= 1 << 15:
        as_u16 = contig.view(np.uint16).reshape(rows, -1)
        counts = np.empty(as_u16.shape[1] * 16, dtype=np.int64)
        for c in range(as_u16.shape[1]):
            hist = np.bincount(as_u16[:, c], minlength=1 << 16)
            pair = hist.reshape(256, 256)  # pair[hi, lo]
            counts[c * 16 : c * 16 + 8] = _BYTE_BITS @ pair.sum(axis=0)
            counts[c * 16 + 8 : c * 16 + 16] = _BYTE_BITS @ pair.sum(axis=1)
        return counts[:group_size]
    as_bytes = contig.view(np.uint8).reshape(rows, -1)
    counts = np.empty(as_bytes.shape[1] * 8, dtype=np.int64)
    for b in range(as_bytes.shape[1]):
        hist = np.bincount(as_bytes[:, b], minlength=256)
        counts[b * 8 : (b + 1) * 8] = _BYTE_BITS @ hist
    return counts[:group_size]


def per_bit_weighted(
    words: np.ndarray,
    weights: np.ndarray,
    group_size: int,
    *,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Weighted column sums: ``out[j] = weights[bit j set].sum()``.

    Same byte-histogram scheme as :func:`per_bit_counts` with weighted
    bins.  Float64 accumulation is exact for integer weights whose sums
    stay below 2**53 — true for any degree total bounded by the edge
    count, which also makes the compiled backend's int64 accumulation
    (selected via ``kernel``) bit-identical.
    """
    if words.size == 0:
        return np.zeros(group_size, dtype=np.int64)
    if kernel is not None and native.effective(kernel):
        return native.per_bit_weighted(words, weights, group_size)
    rows = words.shape[0]
    as_bytes = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    as_bytes = as_bytes.reshape(rows, -1)
    w = np.asarray(weights, dtype=np.float64)
    out = np.empty(as_bytes.shape[1] * 8, dtype=np.float64)
    for b in range(as_bytes.shape[1]):
        hist = np.bincount(as_bytes[:, b], weights=w, minlength=256)
        out[b * 8 : (b + 1) * 8] = _BYTE_BITS @ hist
    return out[:group_size].astype(np.int64)


def new_frontier_stats(
    depths: np.ndarray,
    level: int,
    out_degrees: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-instance new-frontier count and out-degree sum, sparsely.

    Scans the ``(group_size, n)`` depth matrix once for vertices first
    reached at ``level + 1`` and tallies them per instance.  Engines
    that track visited-edge totals incrementally (each vertex enters the
    frontier exactly once) pair this with a running sum instead of the
    dense re-scan in :func:`instance_frontier_stats`.

    Float64 bincount weights are exact here: degree sums are bounded by
    the edge count, far below 2**53.
    """
    group_size = depths.shape[0]
    rows, cols = np.nonzero(depths == np.int32(level + 1))
    counts = np.bincount(rows, minlength=group_size).astype(np.int64)
    if rows.size:
        frontier_edges = np.bincount(
            rows,
            weights=np.asarray(out_degrees)[cols].astype(np.float64),
            minlength=group_size,
        ).astype(np.int64)
    else:
        frontier_edges = np.zeros(group_size, dtype=np.int64)
    return counts, frontier_edges


def instance_frontier_stats(
    depths: np.ndarray,
    level: int,
    out_degrees: np.ndarray,
    total_edges: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All per-instance end-of-level statistics in one vectorized pass.

    For every instance ``j`` of the ``(group_size, n)`` depth matrix:

    * ``counts[j]``          — vertices first reached at ``level + 1``;
    * ``frontier_edges[j]``  — out-degree sum over that new frontier;
    * ``unexplored[j]``      — ``total_edges`` minus the out-degree sum
      over every visited vertex.

    These are exactly the inputs of the Beamer direction switch, with
    integer arithmetic identical to the per-instance formulation.
    """
    new_frontier = depths == np.int32(level + 1)
    counts = np.count_nonzero(new_frontier, axis=1)
    degrees = np.asarray(out_degrees, dtype=np.int64)
    frontier_edges = new_frontier.astype(np.int64) @ degrees
    visited_edges = (depths >= 0).astype(np.int64) @ degrees
    unexplored = total_edges - visited_edges
    return counts, frontier_edges, unexplored
