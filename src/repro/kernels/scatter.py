"""Segmented scatter-OR: sorted reductions instead of ``ufunc.at``.

``np.bitwise_or.at`` dispatches one Python-level inner loop per element
and is orders of magnitude slower than a sorted segmented reduction.
Because OR is commutative, associative, and idempotent, the scatter

    for i: out[targets[i]] |= words[i]

can be reformulated exactly (bit-identically) as

    sort pairs by target  ->  OR-reduce each equal-target run
    ->  one vectorized ``out[unique] |= reduced``

which is the same transformation GPU BFS codes apply when they replace
per-edge atomics with a sort + segmented reduce.  The sort order is
irrelevant to the result; only the set of (target, word) pairs matters.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np


class ScatterPlan(NamedTuple):
    """Precomputed sort/segment structure for one scatter target array.

    Engines that need the sorted unique targets *before* applying the
    scatter (e.g. to snapshot the rows about to be written) build the
    plan first, use :attr:`unique_targets`, then pass the plan to
    :func:`scatter_or` so the argsort runs once.
    """

    #: Argsort of the raw target array (grouping only; not stable).
    order: np.ndarray
    #: Start index of each equal-target run in the sorted order.
    segment_starts: np.ndarray
    #: Sorted unique targets (one per segment).
    unique_targets: np.ndarray


def scatter_plan(targets: np.ndarray) -> ScatterPlan:
    """Sort the targets and locate the equal-target segment boundaries.

    The sort need not be stable — segments only group equal targets, and
    the OR reduction is order-free — so the cheapest kind wins: radix
    when the targets fit 16 bits, otherwise introsort on the narrowest
    integer type (~3x faster than a stable sort on large int keys, and
    another ~30% on 32-bit keys).
    """
    targets = np.asarray(targets)
    peak = int(targets.max()) if targets.size else 0
    if targets.size and peak < 2**16 and targets.min() >= 0:
        order = np.argsort(targets.astype(np.uint16), kind="stable")
    elif targets.dtype == np.int64 and peak < 2**31:
        order = np.argsort(targets.astype(np.int32), kind="quicksort")
    else:
        order = np.argsort(targets, kind="quicksort")
    sorted_targets = targets[order]
    if sorted_targets.size == 0:
        return ScatterPlan(order, np.empty(0, dtype=np.int64), sorted_targets)
    boundary = np.empty(sorted_targets.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_targets[1:], sorted_targets[:-1], out=boundary[1:])
    segment_starts = np.flatnonzero(boundary)
    return ScatterPlan(order, segment_starts, sorted_targets[segment_starts])


def scatter_or(
    out: np.ndarray,
    targets: np.ndarray,
    words: np.ndarray,
    plan: Optional[ScatterPlan] = None,
    word_index: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``np.bitwise_or.at(out, targets, words)`` as a segmented reduction.

    Parameters
    ----------
    out:
        1-D or 2-D integer array updated in place (rows indexed by
        target).
    targets:
        Row index per scattered value (duplicates expected).
    words:
        Values to OR in.  With ``word_index`` given, ``words`` is a
        compact table and ``words[word_index[i]]`` is scattered for pair
        ``i`` — the expansion (e.g. ``np.repeat`` of frontier words over
        degrees) never materializes.
    plan:
        Optional precomputed :func:`scatter_plan` of ``targets``.

    Returns
    -------
    The sorted unique targets (``== np.unique(targets)``).
    """
    if plan is None:
        plan = scatter_plan(targets)
    if plan.unique_targets.size == 0:
        return plan.unique_targets
    words = np.asarray(words)
    if word_index is not None:
        gathered = words[word_index[plan.order]]
    else:
        gathered = words[plan.order]
    reduced = np.bitwise_or.reduceat(gathered, plan.segment_starts, axis=0)
    out[plan.unique_targets] |= reduced
    return plan.unique_targets
