"""Frozen pre-kernels engines: the equivalence oracle and perf baseline.

These classes are verbatim copies of the traversal engines as they stood
before the vectorized kernel layer (:mod:`repro.kernels`) was introduced:
scalar ``np.bitwise_or.at`` scatters, a full BSA snapshot copy per level,
per-instance Python bookkeeping loops, and a one-round-per-iteration
bottom-up scan.  They are kept for two purposes:

* the equivalence suite (``tests/test_kernels_equivalence.py``) asserts
  that the rewired engines produce bit-identical depths, stats, and
  simulated counters against these references;
* the wall-clock benchmark (``benchmarks/bench_kernel_walltime.py``)
  measures the kernel layer's host-speed win against them.

Do not "fix" or optimize this module — it is intentionally slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.device import Device
from repro.bfs.direction import Direction, DirectionPolicy
from repro.bfs.single import SingleResult
from repro.core.result import GroupStats
from repro.core.sharing import SharingObserver
from repro.core.status_array import instance_masks, lanes_for
from repro.util import gather_neighbors

UNVISITED = -1

_BW_INSTRUCTIONS_PER_INSPECTION = 6
_BW_INSTRUCTIONS_PER_VERTEX = 6


class ReferenceBitwiseTraversal:
    """Bitwise (BSA-based) joint traversal of one group.

    Parameters
    ----------
    graph:
        Graph to traverse.
    device:
        Simulated execution target.
    policy:
        Direction-switch policy shared by all instances.
    early_termination:
        Stop a bottom-up scan once every tracked bit of the frontier is
        set (iBFS); disable to model MS-BFS.
    reset_per_level:
        Model MS-BFS's per-level ``visit`` array reset: adds the reset
        traffic and disables the XOR-based identification discount.
    thread_per_instance:
        Model MS-BFS's one-software-thread-per-instance execution
        (thread demand = N) instead of iBFS's thread-per-frontier.
    vector_width:
        CUDA vector data types (section 6): a ``long2``/``long4`` load
        fetches 2/4 status words per instruction, so multi-lane status
        scans issue ``1/width`` as many load requests and instructions.
        Bytes moved (transactions) are unchanged.
    direction_mode:
        ``"per-instance"`` (default — each instance switches direction
        on its own Beamer state, as iBFS's mixed-direction kernel
        allows) or ``"per-group"`` (all instances vote once on the
        aggregate frontier statistics and switch together — simpler
        kernels, but stragglers drag the group; the ablation benchmark
        quantifies the difference).  Depths are exact either way.
    """

    name = "bitwise"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        early_termination: bool = True,
        reset_per_level: bool = False,
        thread_per_instance: bool = False,
        vector_width: int = 1,
        direction_mode: str = "per-instance",
    ) -> None:
        if vector_width not in (1, 2, 4):
            raise TraversalError(
                f"vector_width must be 1, 2, or 4 (long/long2/long4); "
                f"got {vector_width}"
            )
        if direction_mode not in ("per-instance", "per-group"):
            raise TraversalError(
                f"direction_mode must be 'per-instance' or 'per-group'; "
                f"got {direction_mode!r}"
            )
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        self.early_termination = early_termination
        self.reset_per_level = reset_per_level
        self.thread_per_instance = thread_per_instance
        self.vector_width = vector_width
        self.direction_mode = direction_mode
        self._reverse = graph.reverse() if self.policy.allow_bottom_up else None

    # ------------------------------------------------------------------
    def run_group(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
    ):
        """Traverse all sources jointly with the bitwise status array.

        Returns ``(depths, record, stats)`` like
        :meth:`JointTraversal.run_group`.
        """
        sources = [int(s) for s in sources]
        n = self.graph.num_vertices
        group_size = len(sources)
        if group_size == 0:
            raise TraversalError("group must contain at least one source")
        for s in sources:
            if not 0 <= s < n:
                raise TraversalError(f"source {s} out of range [0, {n})")

        lanes = lanes_for(group_size)
        masks = instance_masks(group_size)
        bsa = np.zeros((n, lanes), dtype=np.uint64)
        depths = np.full((group_size, n), UNVISITED, dtype=np.int32)
        for j, s in enumerate(sources):
            bsa[s] |= masks[j]
            depths[j, s] = 0

        directions = [self.policy.initial()] * group_size
        active = np.ones(group_size, dtype=bool)
        out_degrees = self.graph.out_degrees()
        total_edges = self.graph.num_edges

        record = RunRecord()
        observer = SharingObserver(group_size)
        sharing_log = {"td": [], "bu": []}
        bu_inspections = np.zeros(group_size, dtype=np.int64)

        level = 0
        while active.any():
            if max_depth is not None and level >= max_depth:
                break
            if level > n + 1:
                raise TraversalError("traversal failed to converge")
            td_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.TOP_DOWN
            ]
            bu_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.BOTTOM_UP
            ]
            progressed = self._level(
                bsa,
                depths,
                masks,
                td_instances,
                bu_instances,
                level,
                record,
                observer,
                sharing_log,
                bu_inspections,
            )
            group_frontier_edges = 0
            group_unexplored = 0
            group_frontier_count = 0
            for j in range(group_size):
                if not active[j]:
                    continue
                new_frontier = depths[j] == level + 1
                frontier_count = int(np.count_nonzero(new_frontier))
                if directions[j] is Direction.TOP_DOWN:
                    if frontier_count == 0:
                        active[j] = False
                        continue
                else:
                    if not progressed[j]:
                        active[j] = False
                        continue
                frontier_edges = int(out_degrees[new_frontier].sum())
                unexplored = total_edges - int(out_degrees[depths[j] >= 0].sum())
                if self.direction_mode == "per-instance":
                    directions[j] = self.policy.next_direction(
                        directions[j],
                        frontier_edges,
                        unexplored,
                        frontier_count,
                        n,
                    )
                else:
                    group_frontier_edges += frontier_edges
                    group_unexplored += unexplored
                    group_frontier_count += frontier_count
            if self.direction_mode == "per-group" and active.any():
                # One vote on aggregate statistics; every live instance
                # follows it (the "still" per-instance Direction state
                # machine sees the mean instance).
                survivors = [j for j in range(group_size) if active[j]]
                live = len(survivors)
                current = directions[survivors[0]]
                voted = self.policy.next_direction(
                    current,
                    group_frontier_edges // live,
                    group_unexplored // live,
                    group_frontier_count // live,
                    n,
                )
                for j in survivors:
                    directions[j] = voted
            level += 1

        record.counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        stats = GroupStats(
            sources=sources,
            seconds=seconds,
            sharing_degree=observer.degree(),
            sharing_ratio=observer.ratio(),
            jfq_sizes=list(observer.jfq_sizes),
            per_level_sharing=observer.per_level_degree(),
            td_sharing=sharing_log["td"],
            bu_sharing=sharing_log["bu"],
            bottom_up_inspections=bu_inspections.tolist(),
        )
        return depths, record, stats

    # ------------------------------------------------------------------
    # One synchronized level
    # ------------------------------------------------------------------
    def _level(
        self,
        bsa: np.ndarray,
        depths: np.ndarray,
        masks: np.ndarray,
        td_instances: List[int],
        bu_instances: List[int],
        level: int,
        record: RunRecord,
        observer: SharingObserver,
        sharing_log: dict,
        bu_inspections: np.ndarray,
    ) -> np.ndarray:
        mem = self.device.memory
        counters = record.counters
        group_size = depths.shape[0]
        num_vertices = depths.shape[1]
        lanes = bsa.shape[1]
        word_bytes = lanes * 8
        progressed = np.zeros(group_size, dtype=bool)

        td_mask = (
            np.any(depths[td_instances] == level, axis=0)
            if td_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        bu_mask_vertices = (
            np.any(depths[bu_instances] == UNVISITED, axis=0)
            if bu_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        jfq_size = int(np.count_nonzero(td_mask | bu_mask_vertices))
        fq_td = sum(
            int(np.count_nonzero(depths[j] == level)) for j in td_instances
        )
        fq_bu = sum(
            int(np.count_nonzero(depths[j] == UNVISITED)) for j in bu_instances
        )
        observer.record_level(fq_td + fq_bu, jfq_size)
        sharing_log["td"].append((fq_td, int(np.count_nonzero(td_mask))))
        sharing_log["bu"].append(
            (fq_bu, int(np.count_nonzero(bu_mask_vertices)))
        )
        if jfq_size == 0:
            record.append(LevelRecord(depth=level, direction="td"))
            counters.levels += 1
            return progressed

        snapshot = bsa.copy()
        loads = 0
        stores = 0
        load_requests = 0
        store_requests = 0
        atomics = 0
        inspections_level = 0
        # TEPS counts each *instance's* traversed edges (the paper's
        # workload does not shrink under sharing); physical inspections
        # count the single-thread bitwise operations actually executed.
        logical_edges = 0
        out_degrees = self.graph.out_degrees()
        for j in td_instances:
            logical_edges += int(out_degrees[depths[j] == level].sum())

        # --- Top-down pass: BSA[v] |= BSA_k[f] ------------------------
        td_frontier = np.flatnonzero(td_mask).astype(VERTEX_DTYPE)
        if td_frontier.size:
            td_lane_mask = _reference_combine_masks(masks, td_instances)
            frontier_words = snapshot[td_frontier] & td_lane_mask
            degrees = self.graph.out_degrees()[td_frontier]
            sources_rep, neighbors = gather_neighbors(self.graph, td_frontier)
            # One thread per frontier performs one OR per neighbor,
            # regardless of how many instances share the frontier.
            inspections_level += int(neighbors.size)
            word_per_pair = np.repeat(frontier_words, degrees, axis=0)
            np.bitwise_or.at(bsa, neighbors, word_per_pair)

            loads += mem.stream_transactions(td_frontier.size * 8)
            frontier_ld, frontier_req = mem.coalesced_transactions(
                td_frontier, word_bytes
            )
            loads += frontier_ld
            loads += mem.adjacency_transactions(degrees)
            nb_ld, nb_req = mem.coalesced_transactions(neighbors, word_bytes)
            loads += nb_ld
            load_requests += frontier_req + nb_req
            # Shared-memory merging inside each CTA collapses duplicate
            # neighbor updates; only the merged words hit global atomics.
            unique_targets = np.unique(neighbors)
            atomics += int(unique_targets.size)
            counters.shared_memory_accesses += int(
                neighbors.size - unique_targets.size
            )
            st_txn, st_req = mem.coalesced_transactions(unique_targets, word_bytes)
            stores += st_txn
            store_requests += st_req

        # --- Bottom-up pass: BSA[f] |= BSA_k[v], early termination ----
        if bu_instances:
            bu_lane_mask = _reference_combine_masks(masks, bu_instances)
            tally_before = int(bu_inspections.sum())
            probes_total, early, updated = self._bottom_up_pass(
                bsa, snapshot, bu_mask_vertices, bu_lane_mask, bu_inspections
            )
            logical_edges += int(bu_inspections.sum()) - tally_before
            inspections_level += probes_total
            counters.bottom_up_inspections += probes_total
            counters.early_terminations += early
            bu_frontier = np.flatnonzero(bu_mask_vertices).astype(VERTEX_DTYPE)
            loads += mem.stream_transactions(bu_frontier.size * 8)
            per_line = self.device.config.entries_per_transaction
            loads += int(
                np.sum(
                    (self._per_vertex_probes + per_line - 1) // per_line
                )
            )
            probe_ld, probe_req = mem.coalesced_transactions(
                self._probed_neighbors, word_bytes
            )
            loads += probe_ld
            load_requests += probe_req
            st_txn, st_req = mem.coalesced_transactions(updated, word_bytes)
            stores += st_txn
            store_requests += st_req
            # Bottom-up merges updates tree-wise within warps/CTAs,
            # avoiding atomics (section 6, Summary).

        # --- Depth extraction (frontier identification, Algorithm 2) --
        diff = bsa ^ snapshot
        changed = np.flatnonzero(np.any(diff != 0, axis=1))
        for j in (*td_instances, *bu_instances):
            lane, bit = divmod(j, 64)
            got = changed[
                (diff[changed, lane] >> np.uint64(bit)) & np.uint64(1) != 0
            ]
            if got.size:
                depths[j, got] = level + 1
                progressed[j] = True

        # Identification scans BSA_k and BSA_{k+1}; MS-BFS additionally
        # rewrites its per-level visit array.  Vector loads (long2/long4)
        # fetch several lanes per instruction: same bytes, fewer
        # requests and fewer scan instructions.
        words_per_vertex = -(-lanes // self.vector_width)
        scan_ops = num_vertices * words_per_vertex
        loads += 2 * mem.stream_transactions(num_vertices * word_bytes)
        load_requests += 2 * self.device.warps_for(scan_ops)
        if self.reset_per_level:
            stores += mem.stream_transactions(num_vertices * word_bytes)
            store_requests += self.device.warps_for(scan_ops)
        stores += mem.stream_transactions(jfq_size * 8)
        store_requests += self.device.warps_for(jfq_size)
        counters.frontier_enqueues += jfq_size

        instructions = (
            inspections_level * _BW_INSTRUCTIONS_PER_INSPECTION * words_per_vertex
            + (jfq_size + scan_ops) * _BW_INSTRUCTIONS_PER_VERTEX
        )
        counters.inspections += inspections_level
        counters.edges_traversed += logical_edges
        counters.levels += 1
        counters.atomic_operations += atomics
        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += load_requests
        counters.global_store_requests += store_requests
        counters.instructions += instructions

        threads = group_size if self.thread_per_instance else jfq_size
        record.append(
            LevelRecord(
                depth=level,
                direction="bu" if bu_instances and not td_instances else "td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=atomics,
                instructions=instructions,
                threads=threads,
                frontier_size=jfq_size,
            )
        )
        return progressed

    # ------------------------------------------------------------------
    def _bottom_up_pass(
        self,
        bsa: np.ndarray,
        snapshot: np.ndarray,
        bu_mask_vertices: np.ndarray,
        bu_lane_mask: np.ndarray,
        bu_inspections: np.ndarray,
    ):
        """Scan in-neighbors of unvisited vertices, OR-ing their words.

        A single thread serves each frontier; with early termination it
        stops at the first prefix of the neighbor list that fills every
        tracked bit.  Returns ``(probes, early_terminations,
        updated_vertices)``, stashes per-vertex probe counts for the
        caller's transaction accounting, and attributes per-instance
        inspection counts (an instance "inspects" a vertex while its own
        bit is still unset — figure 11's balance metric).
        """
        assert self._reverse is not None
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices

        frontier = np.flatnonzero(bu_mask_vertices).astype(VERTEX_DTYPE)
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        state = snapshot[frontier] & bu_lane_mask
        acc = np.zeros_like(state)
        target = np.broadcast_to(bu_lane_mask, state.shape)
        done = np.all(state == target, axis=1) if self.early_termination else (
            np.zeros(frontier.size, dtype=bool)
        )
        probes = np.zeros(frontier.size, dtype=np.int64)
        probed_parts: List[np.ndarray] = []
        round_idx = 0
        while True:
            alive = ~done & (starts + round_idx < ends)
            if not alive.any():
                break
            alive_idx = np.flatnonzero(alive)
            nb = indices[starts[alive_idx] + round_idx]
            probed_parts.append(nb)
            probes[alive_idx] += 1
            # Instances whose bit is still unset are the ones logically
            # probing this round; tally their inspections.
            pending = (~(state[alive_idx] | acc[alive_idx])) & bu_lane_mask
            bu_inspections += _reference_per_bit_counts(pending, bu_inspections.size)
            contribution = snapshot[nb] & bu_lane_mask
            acc[alive_idx] |= contribution
            if self.early_termination:
                state_alive = state[alive_idx] | acc[alive_idx]
                full = np.all(state_alive == target[alive_idx], axis=1)
                done[alive_idx[full]] = True
            round_idx += 1

        np.bitwise_or.at(bsa, frontier, acc)
        early = int(np.count_nonzero(done & (probes < (ends - starts))))
        updated = frontier[np.any((acc | state) != state, axis=1)]
        self._per_vertex_probes = probes
        self._probed_neighbors = (
            np.concatenate(probed_parts)
            if probed_parts
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        return int(probes.sum()), early, updated


def _reference_combine_masks(masks: np.ndarray, instances: List[int]) -> np.ndarray:
    """OR together the lane masks of the given instances."""
    combined = np.zeros(masks.shape[1], dtype=np.uint64)
    for j in instances:
        combined |= masks[j]
    return combined


def _reference_per_bit_counts(words: np.ndarray, group_size: int) -> np.ndarray:
    """Column sums of the bit matrix encoded by ``(rows, lanes)`` words.

    ``out[j]`` is the number of rows whose instance-``j`` bit is set;
    uint64 lanes are little-endian, so unpacked bit ``j`` of a row is
    exactly instance ``j``'s bit.
    """
    if words.size == 0:
        return np.zeros(group_size, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    bits = np.unpackbits(
        as_bytes.reshape(words.shape[0], -1), axis=1, bitorder="little"
    )
    return bits.sum(axis=0, dtype=np.int64)[:group_size]


#: One status byte per (vertex, instance) pair, as in figure 4.
JSA_STATUS_BYTES = 1
_JSA_INSTRUCTIONS_PER_INSPECTION = 10
_JSA_INSTRUCTIONS_PER_VERTEX = 6


class ReferenceJointTraversal:
    """Joint (JSA-based, non-bitwise) traversal of one group."""

    name = "joint"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        self._reverse = graph.reverse() if self.policy.allow_bottom_up else None

    def run_group(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
    ):
        """Traverse all sources jointly.

        Returns
        -------
        (depths, record, stats):
            ``depths`` is an ``(N, |V|)`` int32 matrix; ``record`` the
            per-level cost records; ``stats`` a :class:`GroupStats`.
        """
        sources = [int(s) for s in sources]
        n = self.graph.num_vertices
        group_size = len(sources)
        if group_size == 0:
            raise TraversalError("group must contain at least one source")
        for s in sources:
            if not 0 <= s < n:
                raise TraversalError(f"source {s} out of range [0, {n})")

        depths = np.full((group_size, n), UNVISITED, dtype=np.int32)
        depths[np.arange(group_size), sources] = 0
        directions = [self.policy.initial()] * group_size
        active = np.ones(group_size, dtype=bool)
        out_degrees = self.graph.out_degrees()
        total_edges = self.graph.num_edges

        record = RunRecord()
        observer = SharingObserver(group_size)
        sharing_log = {"td": [], "bu": []}
        bu_inspections = np.zeros(group_size, dtype=np.int64)

        level = 0
        while active.any():
            if max_depth is not None and level >= max_depth:
                break
            if level > n + 1:
                raise TraversalError("traversal failed to converge")
            td_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.TOP_DOWN
            ]
            bu_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.BOTTOM_UP
            ]
            progressed = self._level(
                depths,
                td_instances,
                bu_instances,
                level,
                record,
                observer,
                sharing_log,
                bu_inspections,
            )

            # Per-instance bookkeeping: completion and direction switch.
            for j in range(group_size):
                if not active[j]:
                    continue
                new_frontier = depths[j] == level + 1
                frontier_count = int(np.count_nonzero(new_frontier))
                if directions[j] is Direction.TOP_DOWN:
                    if frontier_count == 0:
                        active[j] = False
                        continue
                else:
                    if not progressed[j]:
                        active[j] = False
                        continue
                frontier_edges = int(out_degrees[new_frontier].sum())
                unexplored = total_edges - int(out_degrees[depths[j] >= 0].sum())
                directions[j] = self.policy.next_direction(
                    directions[j],
                    frontier_edges,
                    unexplored,
                    frontier_count,
                    n,
                )
            level += 1

        record.counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        stats = GroupStats(
            sources=sources,
            seconds=seconds,
            sharing_degree=observer.degree(),
            sharing_ratio=observer.ratio(),
            jfq_sizes=list(observer.jfq_sizes),
            per_level_sharing=observer.per_level_degree(),
            td_sharing=sharing_log["td"],
            bu_sharing=sharing_log["bu"],
            bottom_up_inspections=bu_inspections.tolist(),
        )
        return depths, record, stats

    # ------------------------------------------------------------------
    # One synchronized level of the joint kernel
    # ------------------------------------------------------------------
    def _level(
        self,
        depths: np.ndarray,
        td_instances: List[int],
        bu_instances: List[int],
        level: int,
        record: RunRecord,
        observer: SharingObserver,
        sharing_log: dict,
        bu_inspections: np.ndarray,
    ) -> np.ndarray:
        mem = self.device.memory
        counters = record.counters
        group_size = depths.shape[0]
        num_vertices = depths.shape[1]
        progressed = np.zeros(group_size, dtype=bool)

        # Joint frontier queue for this level (each shared frontier once).
        td_mask = (
            np.any(depths[td_instances] == level, axis=0)
            if td_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        bu_mask = (
            np.any(depths[bu_instances] == UNVISITED, axis=0)
            if bu_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        jfq_size = int(np.count_nonzero(td_mask | bu_mask))
        fq_td = sum(
            int(np.count_nonzero(depths[j] == level)) for j in td_instances
        )
        fq_bu = sum(
            int(np.count_nonzero(depths[j] == UNVISITED)) for j in bu_instances
        )
        observer.record_level(fq_td + fq_bu, jfq_size)
        sharing_log["td"].append((fq_td, int(np.count_nonzero(td_mask))))
        sharing_log["bu"].append((fq_bu, int(np.count_nonzero(bu_mask))))
        if jfq_size == 0:
            record.append(LevelRecord(depth=level, direction="td"))
            counters.levels += 1
            return progressed

        loads = 0
        stores = 0
        load_requests = 0
        store_requests = 0
        instructions = 0
        inspections_level = 0

        # --- Top-down pass -------------------------------------------
        td_frontier = np.flatnonzero(td_mask).astype(VERTEX_DTYPE)
        discovered_any = np.zeros(num_vertices, dtype=bool)
        if td_frontier.size:
            degrees = self.graph.out_degrees()[td_frontier]
            pair_count = int(degrees.sum())
            # Adjacency of each joint frontier is loaded once and cached
            # in shared memory for all instances.
            loads += mem.adjacency_transactions(degrees)
            loads += mem.stream_transactions(td_frontier.size * 8)
            counters.shared_memory_accesses += pair_count * max(
                len(td_instances) - 1, 0
            )
            for j in td_instances:
                frontier_j = np.flatnonzero(depths[j] == level).astype(VERTEX_DTYPE)
                if frontier_j.size == 0:
                    continue
                _, neighbors = gather_neighbors(self.graph, frontier_j)
                inspections_level += int(neighbors.size)
                fresh = neighbors[depths[j, neighbors] == UNVISITED]
                if fresh.size:
                    depths[j, fresh] = level + 1
                    discovered_any[fresh] = True
                    progressed[j] = True
            # N contiguous threads inspect each (frontier, neighbor)
            # pair's N contiguous status bytes: one coalesced transaction
            # per pair instead of one per instance.
            loads += mem.status_group_transactions(
                pair_count, group_size * JSA_STATUS_BYTES
            )
            load_requests += pair_count
            td_discovered = int(np.count_nonzero(discovered_any))
            stores += mem.status_group_transactions(
                td_discovered, group_size * JSA_STATUS_BYTES
            )
            store_requests += td_discovered

        # --- Bottom-up pass ------------------------------------------
        if bu_instances:
            probes, early, bu_discovered, vertex_rounds = self._bottom_up_pass(
                depths, bu_instances, level, bu_inspections
            )
            progressed[bu_instances] |= bu_discovered > 0
            counters.early_terminations += early
            counters.bottom_up_inspections += probes
            inspections_level += probes
            bu_frontier = np.flatnonzero(bu_mask).astype(VERTEX_DTYPE)
            loads += mem.stream_transactions(bu_frontier.size * 8)
            loads += mem.adjacency_transactions(
                self._reverse.out_degrees()[bu_frontier]
            )
            # Each (vertex, neighbor-position) probe round touches the
            # probed parent's N contiguous statuses once for all
            # instances still scanning (coalesced).
            loads += mem.status_group_transactions(
                vertex_rounds, group_size * JSA_STATUS_BYTES
            )
            load_requests += vertex_rounds
            found = int(bu_discovered.sum())
            stores += mem.status_group_transactions(
                found, group_size * JSA_STATUS_BYTES
            )
            store_requests += found

        # --- Joint frontier queue generation --------------------------
        # One warp scans each vertex's N statuses and votes (__any); one
        # thread enqueues, __ballot records the sharing bitmap.
        loads += mem.stream_transactions(num_vertices * group_size * JSA_STATUS_BYTES)
        load_requests += self.device.warps_for(num_vertices)
        counters.warp_votes += num_vertices
        stores += mem.stream_transactions(jfq_size * 8)
        store_requests += self.device.warps_for(jfq_size)
        counters.frontier_enqueues += jfq_size

        instructions += (
            inspections_level * _JSA_INSTRUCTIONS_PER_INSPECTION
            + jfq_size * _JSA_INSTRUCTIONS_PER_VERTEX
        )
        counters.inspections += inspections_level
        counters.edges_traversed += inspections_level
        counters.levels += 1
        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += load_requests
        counters.global_store_requests += store_requests
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="bu" if bu_instances and not td_instances else "td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=jfq_size * group_size,
                frontier_size=jfq_size,
            )
        )
        return progressed

    def _bottom_up_pass(
        self,
        depths: np.ndarray,
        bu_instances: List[int],
        level: int,
        bu_inspections: np.ndarray,
    ):
        """Per-instance bottom-up probing with early termination.

        Returns ``(total_probes, early_terminations, discovered_per_instance)``.
        """
        assert self._reverse is not None
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices
        bu_rows = np.asarray(bu_instances, dtype=np.int64)

        pair_row, pair_vertex = np.nonzero(depths[bu_rows] == UNVISITED)
        if pair_row.size == 0:
            return 0, 0, np.zeros(len(bu_instances), dtype=np.int64), 0
        pair_vertex = pair_vertex.astype(VERTEX_DTYPE)
        starts = offsets[pair_vertex]
        ends = offsets[pair_vertex + 1]
        found = np.zeros(pair_row.size, dtype=bool)
        probes = np.zeros(pair_row.size, dtype=np.int64)
        vertex_rounds = 0
        round_idx = 0
        while True:
            alive = ~found & (starts + round_idx < ends)
            if not alive.any():
                break
            alive_idx = np.flatnonzero(alive)
            nb = indices[starts[alive_idx] + round_idx]
            inst = bu_rows[pair_row[alive_idx]]
            probes[alive_idx] += 1
            vertex_rounds += int(np.unique(pair_vertex[alive_idx]).size)
            parent_depth = depths[inst, nb]
            hit = (parent_depth >= 0) & (parent_depth <= level)
            found[alive_idx[hit]] = True
            round_idx += 1

        discovered_idx = np.flatnonzero(found)
        depths[
            bu_rows[pair_row[discovered_idx]], pair_vertex[discovered_idx]
        ] = level + 1
        early = int(np.count_nonzero(found & (probes < (ends - starts))))
        np.add.at(bu_inspections, bu_rows[pair_row], probes)
        discovered_per_instance = np.bincount(
            pair_row[discovered_idx], minlength=len(bu_instances)
        )
        return int(probes.sum()), early, discovered_per_instance, vertex_rounds


#: Bytes of one per-vertex status entry (depth byte in the status array).
_SS_STATUS_BYTES = 4
#: Scalar instructions charged per edge inspection / per frontier vertex.
_SS_INSTRUCTIONS_PER_EDGE = 10
_SS_INSTRUCTIONS_PER_VERTEX = 6


class ReferenceSingleBFS:
    """Direction-optimizing single-source BFS engine.

    Parameters
    ----------
    graph:
        Graph to traverse (its reverse CSR is used for bottom-up).
    device:
        Simulated execution target; defaults to a Kepler K40.
    policy:
        Direction-switch policy; pass ``allow_bottom_up=False`` for a
        top-down-only engine (the B40C baseline).
    """

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        self._reverse = graph.reverse() if self.policy.allow_bottom_up else None

    def run(self, source: int, max_depth: Optional[int] = None) -> SingleResult:
        """Traverse from ``source`` and return depths plus cost records."""
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise TraversalError(f"source {source} out of range [0, {n})")
        depths = np.full(n, UNVISITED, dtype=np.int32)
        depths[source] = 0
        record = RunRecord()
        direction = self.policy.initial()
        total_edges = self.graph.num_edges
        frontier = np.asarray([source], dtype=VERTEX_DTYPE)
        level = 0
        while True:
            if max_depth is not None and level >= max_depth:
                break
            if direction is Direction.TOP_DOWN:
                if frontier.size == 0:
                    break
                new_frontier = self._top_down_level(depths, frontier, level, record)
            else:
                unvisited = np.flatnonzero(depths == UNVISITED).astype(VERTEX_DTYPE)
                if unvisited.size == 0:
                    break
                new_frontier = self._bottom_up_level(depths, unvisited, level, record)
                if new_frontier.size == 0:
                    break
            frontier_edges = int(self.graph.out_degrees()[new_frontier].sum())
            explored = depths >= 0
            unexplored_edges = total_edges - int(
                self.graph.out_degrees()[explored].sum()
            )
            direction = self.policy.next_direction(
                direction,
                frontier_edges,
                unexplored_edges,
                int(new_frontier.size),
                n,
            )
            frontier = new_frontier
            level += 1
            if frontier.size == 0:
                break
        record.counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        return SingleResult(source, depths, record, seconds)

    # ------------------------------------------------------------------
    # Top-down: expand frontiers, inspect unvisited neighbors
    # ------------------------------------------------------------------
    def _top_down_level(
        self,
        depths: np.ndarray,
        frontier: np.ndarray,
        level: int,
        record: RunRecord,
    ) -> np.ndarray:
        mem = self.device.memory
        counters = record.counters
        degrees = self.graph.out_degrees()[frontier]
        _, neighbors = gather_neighbors(self.graph, frontier)

        unvisited_mask = depths[neighbors] == UNVISITED
        discovered = neighbors[unvisited_mask]
        new_frontier = np.unique(discovered).astype(VERTEX_DTYPE)
        depths[new_frontier] = level + 1

        inspections = int(neighbors.size)
        counters.inspections += inspections
        counters.edges_traversed += inspections
        counters.frontier_enqueues += int(new_frontier.size)
        counters.levels += 1

        # Memory traffic: read FQ, load adjacency lists, inspect neighbor
        # statuses (scattered), write discovered statuses (scattered),
        # regenerate FQ by scanning the status array.
        loads = mem.stream_transactions(int(frontier.size) * 8)
        loads += mem.adjacency_transactions(degrees)
        inspect_txn, inspect_req = mem.coalesced_transactions(neighbors, _SS_STATUS_BYTES)
        loads += inspect_txn
        fq_scan = mem.stream_transactions(depths.size * _SS_STATUS_BYTES)
        loads += fq_scan
        store_txn, store_req = mem.coalesced_transactions(discovered, _SS_STATUS_BYTES)
        stores = store_txn + mem.stream_transactions(int(new_frontier.size) * 8)

        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += (
            inspect_req
            + self.device.warps_for(int(frontier.size))
            + self.device.warps_for(depths.size)
        )
        counters.global_store_requests += store_req + self.device.warps_for(
            int(new_frontier.size)
        )
        instructions = (
            inspections * _SS_INSTRUCTIONS_PER_EDGE
            + int(frontier.size) * _SS_INSTRUCTIONS_PER_VERTEX
        )
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=int(frontier.size),
                frontier_size=int(frontier.size),
            )
        )
        return new_frontier

    # ------------------------------------------------------------------
    # Bottom-up: unvisited vertices probe in-neighbors until a visited
    # parent is found (early termination)
    # ------------------------------------------------------------------
    def _bottom_up_level(
        self,
        depths: np.ndarray,
        unvisited: np.ndarray,
        level: int,
        record: RunRecord,
    ) -> np.ndarray:
        assert self._reverse is not None
        mem = self.device.memory
        counters = record.counters
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices

        active = unvisited
        starts = offsets[active]
        ends = offsets[active + 1]
        probes = np.zeros(active.size, dtype=np.int64)
        found = np.zeros(active.size, dtype=bool)
        probed_ids_parts = []
        round_idx = 0
        while True:
            alive = ~found & (starts + round_idx < ends)
            if not alive.any():
                break
            slots = starts[alive] + round_idx
            probed = indices[slots]
            probed_ids_parts.append(probed)
            probes[alive] += 1
            # "Visited" here means depth assigned at an earlier level;
            # vertices discovered during this same level carry depth
            # level + 1 and must not count as parents yet.
            parent_found = (depths[probed] >= 0) & (depths[probed] <= level)
            hit = np.flatnonzero(alive)[parent_found]
            found[hit] = True
            round_idx += 1

        discovered = active[found]
        depths[discovered] = level + 1
        early = found & (probes < (ends - starts))
        counters.early_terminations += int(np.count_nonzero(early))

        inspections = int(probes.sum())
        counters.inspections += inspections
        counters.bottom_up_inspections += inspections
        counters.edges_traversed += inspections
        counters.frontier_enqueues += int(active.size)
        counters.levels += 1

        probed_ids = (
            np.concatenate(probed_ids_parts)
            if probed_ids_parts
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        loads = mem.stream_transactions(int(active.size) * 8)
        per_line = self.device.config.entries_per_transaction
        loads += int(np.sum((probes + per_line - 1) // per_line))
        inspect_txn, inspect_req = mem.coalesced_transactions(probed_ids, _SS_STATUS_BYTES)
        loads += inspect_txn
        loads += mem.stream_transactions(depths.size * _SS_STATUS_BYTES)
        store_txn, store_req = mem.coalesced_transactions(discovered, _SS_STATUS_BYTES)
        stores = store_txn + mem.stream_transactions(int(active.size) * 8)

        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += (
            inspect_req
            + self.device.warps_for(int(active.size))
            + self.device.warps_for(depths.size)
        )
        counters.global_store_requests += store_req + self.device.warps_for(
            int(active.size)
        )
        instructions = (
            inspections * _SS_INSTRUCTIONS_PER_EDGE
            + int(active.size) * _SS_INSTRUCTIONS_PER_VERTEX
        )
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="bu",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=int(active.size),
                frontier_size=int(active.size),
            )
        )
        return discovered
