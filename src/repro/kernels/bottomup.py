"""Degree-bucketed bottom-up scans.

The reference engines run bottom-up as one synchronized Python loop
over neighbor-list *positions*: round ``r`` probes the ``r``-th
in-neighbor of every still-scanning vertex, so a skewed graph costs
``max_degree`` Python-level iterations even when almost every vertex
terminated rounds ago.  The key observation is that the scan is
*per-vertex local*: whether (and when) a vertex stops depends only on
its own neighbor prefix, and every per-round tally the engines need
(probe counts, per-instance inspections, early terminations) can be
re-derived from per-vertex quantities.

The scanners here therefore bucket vertices by in-degree (short /
medium / long) and process each bucket in wide vectorized passes — a
``(vertices, rounds)`` block per pass, with cumulative ORs or hit
argmaxes replacing the round loop.  Long adjacency lists are walked in
fixed-width chunks so hubs cannot blow up the block size.

Because the simulated memory model coalesces the probe address stream
*in warp order*, :func:`round_major_probes` reconstructs the exact
round-major (round 0 of every vertex, then round 1, ...) neighbor
sequence the reference loop would have produced, keeping transaction
counts bit-identical.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

import repro.native as native
from repro.kernels.bookkeeping import per_bit_counts
from repro.obs import profile as obs_profile
from repro.util import exclusive_cumsum

#: Degree bounds of the short and medium buckets; longer lists are
#: chunked by ``_LONG_CHUNK`` rounds per pass.
_BUCKET_BOUNDS = (4, 32)
_LONG_CHUNK = 64
#: Soft cap on elements per vectorized block; wide buckets are sliced
#: row-wise to stay under it.
_BLOCK_BUDGET = 1 << 22


def _row_slices(count: int, rounds: int, lanes: int):
    """Yield ``slice`` objects covering ``count`` rows under the budget."""
    per_row = max(rounds * lanes, 1)
    step = max(1, _BLOCK_BUDGET // per_row)
    for lo in range(0, count, step):
        yield slice(lo, min(lo + step, count))


def _bucketize(work: np.ndarray, degrees: np.ndarray):
    """Split ``work`` positions into (positions, degree_cap) buckets."""
    buckets = []
    deg = degrees[work]
    taken = np.zeros(work.size, dtype=bool)
    for bound in _BUCKET_BOUNDS:
        sel = ~taken & (deg <= bound)
        if sel.any():
            buckets.append((work[sel], bound))
        taken |= sel
    rest = work[~taken]
    if rest.size:
        buckets.append((rest, None))
    return buckets


def _pass_widths(cap, adaptive: bool):
    """Round counts per vectorized pass for one bucket.

    With early exits (``adaptive``) most vertices stop within a probe or
    two, so passes grow geometrically from a single round — the dominant
    first block wastes no work on the many that die immediately, while
    survivors graduate to wider blocks.  Without early exits every round
    runs regardless, so the bucket is processed at its full width
    (capped by ``_LONG_CHUNK``).
    """
    width = 1 if adaptive else (cap or _LONG_CHUNK)
    while True:
        yield width
        width = min(width * 2, _LONG_CHUNK)


def round_major_probes(
    indices: np.ndarray, starts: np.ndarray, probes: np.ndarray
) -> np.ndarray:
    """Probed-neighbor stream in the reference loop's round-major order.

    Vertex ``i`` (in ``starts`` order) probed ``probes[i]`` neighbors,
    the ``r``-th being ``indices[starts[i] + r]``.  The reference loop
    emits all round-0 probes (vertices ascending), then all round-1
    probes, and so on — the order the warp-coalescing model sees.

    Dispatches to the compiled backend transparently when one is
    resolved: the native counting sort produces the identical stream
    (the ordering is fully determined), so no planner choice is needed.
    """
    total = int(probes.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    if native.enabled():
        return native.round_major_probes(indices, starts, probes)
    m = np.int64(probes.size)
    v_rep = np.repeat(np.arange(probes.size, dtype=np.int64), probes)
    r_idx = np.arange(total, dtype=np.int64) - np.repeat(
        exclusive_cumsum(probes), probes
    )
    # Sorting the combined key (round, vertex) in one stable pass is the
    # same ordering lexsort((v_rep, r_idx)) produces, at half the cost.
    max_key = (int(probes.max()) - 1) * int(m) + int(m) - 1
    if max_key < 2**31:
        order = np.argsort(
            (r_idx * m + v_rep).astype(np.int32), kind="stable"
        )
    elif max_key < 2**62:
        order = np.argsort(r_idx * m + v_rep, kind="stable")
    else:
        order = np.lexsort((v_rep, r_idx))
    return indices[starts[v_rep] + r_idx][order]


# ----------------------------------------------------------------------
# Bitwise OR-accumulating scan (the BSA engine's bottom-up)
# ----------------------------------------------------------------------
def _rows_match(words: np.ndarray, target_row: np.ndarray) -> np.ndarray:
    """Row-wise ``all(words == target_row, axis=1)`` as a lane loop.

    ``target_row`` is one ``(lanes,)`` word shared by every row, so each
    lane is a scalar compare; chained 2-D compares beat the generic
    reduce machinery on a 3-D view.
    """
    eq = words[:, 0] == target_row[0]
    for lane in range(1, words.shape[1]):
        eq &= words[:, lane] == target_row[lane]
    return eq


def bucketed_or_scan(
    indices: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    state: np.ndarray,
    lane_mask: np.ndarray,
    target: np.ndarray,
    early_termination: bool,
    fetch_rows: Callable[[np.ndarray], np.ndarray],
    inspections_out: np.ndarray,
    *,
    kernel: str = "auto",
    source: Optional[Tuple] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Profiled entry point for :func:`_bucketed_or_scan_impl` (the
    docstring there is authoritative); emits one
    ``profile.kernels.bottomup_or_scan`` span per call when profiling
    is on, a single flag test when off.

    ``kernel`` selects the host execution variant (the planner's
    :data:`~repro.plan.types.KERNEL_VARIANTS`): ``"auto"`` and
    ``"native"`` run the compiled backend when one resolves (an
    explicit ``"native"`` with no backend falls back with a one-time
    warning); ``"auto"`` and ``"flat"`` otherwise use the flat
    single-lane specialization when the group fits one status word,
    ``"generic"`` forces the row-wise multi-lane passes.  All variants
    are bit-identical in outputs and counters.

    ``source`` is the raw-array form of ``fetch_rows`` the compiled
    backend needs (:meth:`LevelWorkspace.snapshot_source
    <repro.kernels.workspace.LevelWorkspace.snapshot_source>`); without
    it the native variant cannot run and the numpy passes execute.  The
    native scan returns ``stream=None`` in both modes — callers
    reconstruct it with :func:`round_major_probes`, which emits the
    identical round-major order.
    """
    with obs_profile.span(
        "kernels.bottomup_or_scan",
        positions=int(starts.size),
        early_termination=bool(early_termination),
        kernel=kernel,
    ):
        if source is not None and native.effective(kernel, state.shape[1]):
            probes, acc, done = native.or_scan(
                indices, starts, ends, state, lane_mask, target,
                early_termination, source, inspections_out,
            )
            return probes, acc, done, None
        return _bucketed_or_scan_impl(
            indices, starts, ends, state, lane_mask, target,
            early_termination, fetch_rows, inspections_out,
            kernel=kernel,
        )


def _bucketed_or_scan_impl(
    indices: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    state: np.ndarray,
    lane_mask: np.ndarray,
    target: np.ndarray,
    early_termination: bool,
    fetch_rows: Callable[[np.ndarray], np.ndarray],
    inspections_out: np.ndarray,
    *,
    kernel: str = "auto",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Per-vertex bottom-up OR scan with optional early termination.

    For frontier position ``i`` with in-neighbors ``nb_0..nb_{d-1}``,
    accumulate ``acc |= fetch_rows(nb_r) & lane_mask`` round by round,
    stopping (when ``early_termination``) at the first round after which
    ``state | acc`` equals the ``(lanes,)`` row ``target`` (one word
    shared by every position).  Per-instance inspection tallies — one
    per (vertex, round, instance-with-unset-bit) triple — are added to
    ``inspections_out`` exactly as the synchronized reference loop
    counts them.

    With early termination the scan runs one geometric work-list
    (widths 1, 2, 4, ... rounds per pass): most vertices fill within a
    probe or two, so the dominant first pass is exactly one round wide,
    and because passes cover strictly increasing round ranges over one
    vertex-ordered list, the probed-neighbor stream can be *emitted* in
    round-major order as a by-product — no sort needed.  Without early
    termination every round executes regardless, so vertices are
    degree-bucketed into full-width passes instead and the stream is
    left to :func:`round_major_probes`.

    Returns ``(probes, acc, done, stream)``: rounds executed per
    position, the accumulated words, which positions reached the full
    target, and the round-major probed-neighbor stream (``None`` when
    not running in early-termination mode).
    """
    m = starts.size
    lanes = state.shape[1]
    group_size = inspections_out.size
    degrees = ends - starts
    probes = np.zeros(m, dtype=np.int64)
    acc = np.zeros_like(state)
    if early_termination:
        done = _rows_match(state, target)
    else:
        done = np.zeros(m, dtype=bool)
    work = np.flatnonzero(~done & (degrees > 0))

    # Which instances the lane mask tracks, as a 0/1 vector — pending
    # (masked-and-unset) tallies become "cells minus set bits" without
    # materializing the inverted words.
    mask_bits = np.unpackbits(
        np.ascontiguousarray(lane_mask, dtype=np.uint64).view(np.uint8),
        bitorder="little",
    )[:group_size].astype(np.int64)

    if early_termination:
        stream_parts = []
        positions = work
        # Compact running prefix (``state | acc``) per *live* position,
        # carried across passes.  Every live position has probed exactly
        # ``offset`` rounds, so retirement writes — probes, done, acc —
        # happen once per position instead of full-array fancy updates
        # every pass.  Single-lane groups run entirely on flat scalar
        # words (1-D selects and scatters are markedly cheaper than
        # row-wise ones).
        # "generic" opts out of the flat specialization; "flat" asks for
        # it (honored only when the group fits one word — the flat pass
        # is structurally single-lane).
        flat = lanes == 1 and kernel != "generic"
        if flat:
            pass_fn = _et_pass_flat
            pre = np.take(state.reshape(-1), positions)
            acc_rows: np.ndarray = acc.reshape(-1)
            fetch = lambda rows: fetch_rows(rows).reshape(-1)  # noqa: E731
        else:
            pass_fn = _et_pass
            pre = state[positions]
            acc_rows = acc
            fetch = fetch_rows
        offset = 0
        width = 1
        while positions.size:
            round_lists: list = [[] for _ in range(width)]
            surv_pos: list = []
            surv_pre: list = []
            for rows in _row_slices(positions.size, width, lanes):
                sp, spre = pass_fn(
                    positions[rows], pre[rows], offset, width,
                    probes, done, acc_rows, round_lists,
                    indices, starts, degrees, lane_mask, mask_bits,
                    target, fetch, inspections_out, group_size,
                )
                surv_pos.append(sp)
                surv_pre.append(spre)
            for per_round in round_lists:
                stream_parts.extend(per_round)
            offset += width
            width = min(width * 2, _LONG_CHUNK)
            positions = np.concatenate(surv_pos) if surv_pos else positions[:0]
            pre = np.concatenate(surv_pre) if surv_pre else pre[:0]
        if stream_parts:
            stream = np.concatenate(stream_parts)
        else:
            stream = np.empty(0, dtype=indices.dtype)
        return probes, acc, done, stream

    args = (
        indices,
        starts,
        degrees,
        state,
        acc,
        lane_mask,
        mask_bits,
        fetch_rows,
        inspections_out,
        group_size,
    )
    for positions, cap in _bucketize(work, degrees):
        offset = 0
        width = cap or _LONG_CHUNK
        while positions.size:
            for rows in _row_slices(positions.size, width, lanes):
                _or_pass(positions[rows], offset, width, probes, *args)
            offset += width
            positions = positions[degrees[positions] > offset]
    return probes, acc, done, None


def _et_pass_flat(
    idx: np.ndarray,
    pre: np.ndarray,
    offset: int,
    width: int,
    probes: np.ndarray,
    done: np.ndarray,
    acc: np.ndarray,
    round_lists: list,
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    lane_mask: np.ndarray,
    mask_bits: np.ndarray,
    target: np.ndarray,
    fetch: Callable[[np.ndarray], np.ndarray],
    inspections_out: np.ndarray,
    group_size: int,
):
    """:func:`_et_pass` specialized to one lane: rows are flat scalars.

    ``pre``, ``acc``, and everything ``fetch`` returns are 1-D here, so
    the per-pass selects and retirement scatters run as plain element
    indexing.  Logic is otherwise identical to the generic pass.
    """
    a = idx.size
    base = starts[idx] + offset
    target0 = target[0]
    mask0 = lane_mask[0]

    if width == 1:
        nb = indices[base]
        contrib = fetch(nb)
        contrib &= mask0
        np.add(
            inspections_out,
            mask_bits * (a - per_bit_counts(pre, group_size)),
            out=inspections_out,
        )
        round_lists[0].append(nb)
        new_pre = np.bitwise_or(pre, contrib, out=contrib)
        full = new_pre == target0
        survive = ~full
        survive &= np.take(degrees, idx) > offset + 1
        retire = ~survive
        ret_idx = idx[retire]
        probes[ret_idx] = offset + 1
        done[idx[full]] = True
        acc[ret_idx] = new_pre[retire]
        return idx[survive], new_pre[survive]

    deg = np.take(degrees, idx)
    lim = np.minimum(deg - offset, width)
    cols = np.arange(width, dtype=np.int64)
    slot = base[:, None] + np.minimum(cols[None, :], lim[:, None] - 1)
    nb = indices[slot]
    contrib = fetch(nb.reshape(-1)).reshape(a, width)
    contrib &= mask0
    contrib[:, 0] |= pre
    after = np.bitwise_or.accumulate(contrib, axis=1, out=contrib)

    # The prefix is monotone and padded cells re-OR the last valid word,
    # so a row fills somewhere iff its *last* column is full — one
    # column compare finds the (typically few) full rows, and the
    # per-row argmax runs only on those.
    any_full = after[:, width - 1] == target0
    first_full = np.zeros(a, dtype=np.int64)
    full_rows = np.flatnonzero(any_full)
    if full_rows.size:
        first_full[full_rows] = np.argmax(
            after[full_rows] == target0, axis=1
        )
    probes_c = np.where(any_full, np.minimum(first_full + 1, lim), lim)

    col_counts = a - np.cumsum(np.bincount(probes_c, minlength=width + 1)[:width])
    set_counts = np.zeros(group_size, dtype=np.int64)
    total_cells = 0
    for r in range(width):
        c = int(col_counts[r])
        if c == 0:
            break
        src = pre if r == 0 else after[:, r - 1]
        if c == a:
            sel_words = src
            sel_nb = nb[:, r]
        else:
            live = probes_c > r
            sel_words = src[live]
            sel_nb = nb[live, r]
        set_counts += per_bit_counts(sel_words, group_size)
        total_cells += c
        round_lists[r].append(sel_nb)
    np.add(
        inspections_out,
        mask_bits * (total_cells - set_counts),
        out=inspections_out,
    )

    survive = ~any_full & (deg > offset + width)
    retire = ~survive
    ret_idx = idx[retire]
    probes[ret_idx] = offset + probes_c[retire]
    done[ret_idx] = any_full[retire] & (first_full[retire] < lim[retire])
    acc[ret_idx] = after[np.flatnonzero(retire), probes_c[retire] - 1]
    return idx[survive], after[np.flatnonzero(survive), width - 1]


def _et_pass(
    idx: np.ndarray,
    pre: np.ndarray,
    offset: int,
    width: int,
    probes: np.ndarray,
    done: np.ndarray,
    acc: np.ndarray,
    round_lists: list,
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    lane_mask: np.ndarray,
    mask_bits: np.ndarray,
    target: np.ndarray,
    fetch_rows: Callable[[np.ndarray], np.ndarray],
    inspections_out: np.ndarray,
    group_size: int,
):
    """Early-termination rounds ``[offset, offset + width)`` for ``idx``.

    ``pre[i]`` is ``state | acc`` for position ``idx[i]`` — the compact
    work-list invariant.  Returns the surviving ``(positions, pre)``
    pair; retiring positions (filled or degree-exhausted) get their
    final ``probes``, ``done``, and ``acc`` values written here, once.
    ``acc`` receives the whole prefix word: the extra ``state`` bits are
    already present in ``state | acc`` and in the live status array, so
    no downstream comparison changes.
    """
    a = idx.size
    lanes = pre.shape[1]
    base = starts[idx] + offset

    if width == 1:
        # The dominant pass: one probe each, no padding, no accumulate.
        nb = indices[base]
        contrib = fetch_rows(nb) & lane_mask
        # An instance's pending count over these rows is the rows whose
        # masked bit is unset: rows minus set bits, zeroed off-mask.
        np.add(
            inspections_out,
            mask_bits * (a - per_bit_counts(pre, group_size)),
            out=inspections_out,
        )
        round_lists[0].append(nb)
        new_pre = pre | contrib
        full = _rows_match(new_pre, target)
        survive = ~full & (degrees[idx] > offset + 1)
        retire = idx[~survive]
        probes[retire] = offset + 1
        done[idx[full]] = True
        acc[retire] = new_pre[~survive]
        return idx[survive], new_pre[survive]

    lim = np.minimum(degrees[idx] - offset, width)
    cols = np.arange(width, dtype=np.int64)
    # Padding slots re-probe the last valid neighbor.  That is harmless
    # without any zeroing: the OR-prefix ``after`` is monotone per row,
    # so a padded round can never be the *first* full one, and no padded
    # cell is ever read back — ``probes_c`` never exceeds ``lim``.
    slot = base[:, None] + np.minimum(cols[None, :], lim[:, None] - 1)
    nb = indices[slot]
    contrib = fetch_rows(nb.reshape(-1)).reshape(a, width, lanes)
    contrib &= lane_mask

    # Seed round 0 with the running prefix and accumulate in place:
    # after[:, r] is then the word right after local round r, and the
    # word seen *before* round r is after[:, r - 1] (pre for r = 0).
    contrib[:, 0] |= pre
    after = np.bitwise_or.accumulate(contrib, axis=1, out=contrib)

    # Monotone prefix + padding re-OR: a row fills somewhere iff its
    # last column is full, so the per-row argmax runs only on the
    # (typically few) full rows.
    any_full = _rows_match(after[:, width - 1], target)
    first_full = np.zeros(a, dtype=np.int64)
    full_rows = np.flatnonzero(any_full)
    if full_rows.size:
        sub = after[full_rows]
        full_after = sub[:, :, 0] == target[0]
        for lane in range(1, lanes):
            full_after &= sub[:, :, lane] == target[lane]
        first_full[full_rows] = np.argmax(full_after, axis=1)
    probes_c = np.where(any_full, np.minimum(first_full + 1, lim), lim)

    # Per-round tally and stream emission without materializing the
    # "before" cube or a 3-D boolean gather: round r probes the rows
    # with probes_c > r, and their before-word is pre (r == 0) or
    # after[:, r - 1].
    col_counts = a - np.cumsum(np.bincount(probes_c, minlength=width + 1)[:width])
    set_counts = np.zeros(group_size, dtype=np.int64)
    total_cells = 0
    for r in range(width):
        c = int(col_counts[r])
        if c == 0:
            break
        src = pre if r == 0 else after[:, r - 1]
        if c == a:
            sel_words = src
            sel_nb = nb[:, r]
        else:
            live = probes_c > r
            sel_words = src[live]
            sel_nb = nb[live, r]
        set_counts += per_bit_counts(sel_words, group_size)
        total_cells += c
        round_lists[r].append(sel_nb)
    np.add(
        inspections_out,
        mask_bits * (total_cells - set_counts),
        out=inspections_out,
    )

    # Survivors (not full, neighbors left) keep scanning with the pass's
    # full accumulation as their new prefix; everyone else retires.
    survive = ~any_full & (degrees[idx] > offset + width)
    retire = ~survive
    ret_idx = idx[retire]
    probes[ret_idx] = offset + probes_c[retire]
    done[ret_idx] = any_full[retire] & (first_full[retire] < lim[retire])
    acc[ret_idx] = after[np.flatnonzero(retire), probes_c[retire] - 1]
    return idx[survive], after[np.flatnonzero(survive), width - 1]


def _or_pass(
    idx: np.ndarray,
    offset: int,
    width: int,
    probes: np.ndarray,
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    state: np.ndarray,
    acc: np.ndarray,
    lane_mask: np.ndarray,
    mask_bits: np.ndarray,
    fetch_rows: Callable[[np.ndarray], np.ndarray],
    inspections_out: np.ndarray,
    group_size: int,
) -> None:
    """Full-scan rounds ``[offset, offset + width)`` (no early exit)."""
    a = idx.size
    lanes = state.shape[1]
    base = starts[idx] + offset

    lim = np.minimum(degrees[idx] - offset, width)
    cols = np.arange(width, dtype=np.int64)
    # Padding slots re-probe the last valid neighbor; the per-round
    # tally below never reads a padded cell (``lim`` bounds it) and the
    # OR result is unchanged by re-ORing a word already folded in.
    slot = base[:, None] + np.minimum(cols[None, :], lim[:, None] - 1)
    nb = indices[slot]
    contrib = fetch_rows(nb.reshape(-1)).reshape(a, width, lanes)
    contrib &= lane_mask

    prefix0 = state[idx]
    if offset:
        prefix0 = prefix0 | acc[idx]
    # Seed round 0 with the starting word and accumulate in place:
    # after[:, r] is then the word right after local round r, and the
    # word seen *before* round r is after[:, r - 1] (prefix0 for r = 0).
    contrib[:, 0] |= prefix0
    after = np.bitwise_or.accumulate(contrib, axis=1, out=contrib)

    probes[idx] += lim
    # ``after`` includes prefix0's bits on top of the probed ORs; those
    # bits are already present in ``state | acc`` (and in the live
    # array), so folding them into ``acc`` changes no downstream value.
    acc[idx] |= after[np.arange(a), lim - 1]

    # Per-round pending tally: round r probes the rows with lim > r,
    # whose before-word is prefix0 (r == 0) or after[:, r - 1].
    col_counts = a - np.cumsum(np.bincount(lim, minlength=width + 1)[:width])
    set_counts = np.zeros(group_size, dtype=np.int64)
    total_cells = 0
    for r in range(width):
        c = int(col_counts[r])
        if c == 0:
            break
        src = prefix0 if r == 0 else after[:, r - 1]
        if c == a:
            sel_words = src
        else:
            sel_words = src[lim > r]
        set_counts += per_bit_counts(sel_words, group_size)
        total_cells += c
    np.add(
        inspections_out,
        mask_bits * (total_cells - set_counts),
        out=inspections_out,
    )


# ----------------------------------------------------------------------
# First-hit scan (the JSA engine's and single-source bottom-up)
# ----------------------------------------------------------------------
def bucketed_hit_scan(
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    hit: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    depth_table: Optional[np.ndarray] = None,
    inst: Optional[np.ndarray] = None,
    level: Optional[int] = None,
    kernel: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Profiled entry point for :func:`_bucketed_hit_scan_impl` (the
    docstring there is authoritative); emits one
    ``profile.kernels.bottomup_hit_scan`` span per call when profiling
    is on.

    The JSA and single-source engines' ``hit`` predicate is always the
    same depth-window test — neighbor visited at a level ``<= level``.
    Passing its raw form (``depth_table``, optional per-position row
    selector ``inst``, and ``level``) lets the compiled backend run the
    scan as one fused loop when ``kernel`` resolves to it; the ``hit``
    callable remains the numpy fallback and the semantics of record.
    """
    with obs_profile.span(
        "kernels.bottomup_hit_scan",
        positions=int(starts.size),
        kernel=kernel,
    ):
        if (
            depth_table is not None
            and level is not None
            and native.effective(kernel)
        ):
            return native.hit_scan_depth(
                indices, starts, degrees, depth_table, level, inst=inst
            )
        return _bucketed_hit_scan_impl(indices, starts, degrees, hit)


def _bucketed_hit_scan_impl(
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    hit: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-position scan that stops at the first hit neighbor.

    ``hit(positions, neighbors)`` receives parallel arrays — the global
    scan positions and the neighbor each probes — and returns a boolean
    per pair; it must be pure (the depth array is not mutated until the
    whole scan finishes, mirroring the reference loops).

    Returns ``(probes, found)``: probes executed per position
    (``first_hit + 1`` or the full degree) and whether a hit occurred.
    """
    m = starts.size
    probes = np.zeros(m, dtype=np.int64)
    found = np.zeros(m, dtype=bool)
    work = np.flatnonzero(degrees > 0)
    if work.size == 0:
        return probes, found

    for positions, cap in _bucketize(work, degrees):
        offset = 0
        widths = _pass_widths(cap, True)
        while positions.size:
            width = next(widths)
            for rows in _row_slices(positions.size, width, 1):
                idx = positions[rows]
                a = idx.size
                lim = np.minimum(degrees[idx] - offset, width)
                cols = np.arange(width, dtype=np.int64)
                valid = cols[None, :] < lim[:, None]
                base = starts[idx] + offset
                slot = np.where(valid, base[:, None] + cols[None, :], base[:, None])
                hits = np.zeros((a, width), dtype=bool)
                pos_rep = np.broadcast_to(idx[:, None], (a, width))[valid]
                hits[valid] = hit(pos_rep, indices[slot[valid]])
                any_hit = hits.any(axis=1)
                first = np.argmax(hits, axis=1)
                probes[idx] += np.where(any_hit, first + 1, lim)
                found[idx] |= any_hit
            offset += width
            positions = positions[
                ~found[positions] & (degrees[positions] > offset)
            ]
    return probes, found
