"""Vectorized traversal primitives shared by every engine.

The simulated engines model GPU kernels, but their host-side hot loops
originally ran the slow way: ``np.bitwise_or.at`` scatters, full status
snapshots per level, per-instance Python bookkeeping, and one Python
iteration per bottom-up round.  This package holds the vectorized
replacements — reformulations that are *bit-identical* in every depth,
statistic, and simulated counter, just faster on the host:

* :mod:`~repro.kernels.scatter` — scatter-OR as an argsort +
  ``bitwise_or.reduceat`` segmented reduction;
* :mod:`~repro.kernels.workspace` — :class:`LevelWorkspace`, the
  dirty-row snapshot that replaces per-level full-BSA copies;
* :mod:`~repro.kernels.bookkeeping` — one-pass per-instance frontier
  statistics and packed-bit column counts;
* :mod:`~repro.kernels.bottomup` — degree-bucketed bottom-up scans and
  round-major probe-stream reconstruction;
* :mod:`~repro.kernels.reference` — frozen pre-kernels engines kept as
  the equivalence oracle and wall-clock perf baseline.

``docs/performance.md`` explains the transformations and how the
equivalence suite and ``benchmarks/bench_kernel_walltime.py`` pin them.
"""

from repro.kernels.bookkeeping import (
    instance_frontier_stats,
    new_frontier_stats,
    per_bit_counts,
    per_bit_weighted,
    unpack_lane_bits,
)
from repro.kernels.bottomup import (
    bucketed_hit_scan,
    bucketed_or_scan,
    round_major_probes,
)
from repro.kernels.scatter import ScatterPlan, scatter_or, scatter_plan
from repro.kernels.workspace import FullSnapshotWorkspace, LevelWorkspace

__all__ = [
    "FullSnapshotWorkspace",
    "LevelWorkspace",
    "ScatterPlan",
    "bucketed_hit_scan",
    "bucketed_or_scan",
    "instance_frontier_stats",
    "new_frontier_stats",
    "per_bit_counts",
    "per_bit_weighted",
    "round_major_probes",
    "scatter_or",
    "scatter_plan",
    "unpack_lane_bits",
]
