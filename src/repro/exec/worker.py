"""Worker process entry point.

Each worker attaches the shared-memory graph once, builds its own
:class:`~repro.core.engine.IBFS` engine (bit-identical to the parent's:
same config, device model, and direction policy), and then loops on its
task queue.  A task is ``(epoch, task_id, attempt, group, max_depth,
want_depths, plan, trace_ctx, result_name)`` — ``result_name`` is the
parent-allocated shared-memory segment name the depth matrix must be
pushed under (``None`` when depths travel inline), so the parent can
reclaim the segment even if this worker dies before replying —
``plan`` is an optional recorded
:class:`~repro.plan.types.RunPlan` replayed instead of re-running the
planner heuristics, and the :class:`~repro.core.result.GroupStats` in
the reply carries the plan the engine actually executed.  The reply on
the shared result queue is either

``("ok", worker_id, epoch, task_id, attempt, depth_spec, depths,
counters, stats, wall_seconds, spans)``
    where ``depth_spec`` is a :class:`~repro.exec.shm.SharedArraySpec`
    for the depth matrix (or ``None`` with ``depths`` carrying the
    array inline when shared transport is disabled), or

``("error", worker_id, epoch, task_id, attempt, message, traceback,
spans)``
    for any exception the task raised — ``traceback`` is the formatted
    worker-side traceback, the crashed attempt's "last words", which
    the parent folds into its fault log instead of discarding.

``epoch`` is the parent's run sequence number, echoed verbatim: task
ids restart at zero every run, so a straggler reply from a previous
run can only be told apart — and safely dropped — by its epoch.

``trace_ctx`` is an optional :data:`~repro.obs.tracing.SpanContext`
``(trace_id, dispatch_span_id)``: when present, the worker runs the
task under a ``worker.task`` span parented onto the executor's
dispatch span, and ships every span it finished (including the
engine's ``profile.*`` spans) back as plain dicts in ``spans``.

The loop exits on a ``None`` sentinel.  Injected faults
(:class:`~repro.exec.faults.FaultPlan`) are applied inside the task
span, keyed on ``(task_id, attempt)`` so they reproduce exactly.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_mod
from dataclasses import dataclass
from typing import List, Optional, Tuple

import repro.native as native
from repro.core.engine import IBFS, IBFSConfig
from repro.plan.policy import DirectionPolicy, Policy
from repro.gpusim.config import DeviceConfig
from repro.gpusim.device import Device
from repro.exec.faults import FaultPlan
from repro.exec.shm import SharedGraphHandle, attach_graph, push_array
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild the parent's engine."""

    config: IBFSConfig
    device_config: Optional[DeviceConfig] = None
    policy: Optional[DirectionPolicy] = None
    planner: Optional[Policy] = None

    def build(self, graph) -> IBFS:
        """Resolve the worker's engine through the substrate registry:
        the worker loop is a serial placement over the attached shm
        graph, so the spec builds one serial substrate and runs its
        engine — identical construction to the parent's."""
        from repro.runtime import SubstrateSpec, make_substrate

        device = Device(self.device_config) if self.device_config else None
        substrate = make_substrate(
            SubstrateSpec(kind="serial"),
            graph,
            engine_config=self.config,
            device=device,
            policy=self.policy,
            planner=self.planner,
        )
        return substrate.engine


@dataclass(frozen=True)
class ObsSpec:
    """Observability configuration shipped to a worker at spawn.

    Captured from the parent's process-wide profiling state when the
    pool starts, so workers profile identically under both ``fork``
    and ``spawn`` start methods (where module globals don't inherit).
    """

    profile: bool = False
    sample_every: int = 1


def _worker_tracer(
    worker_id: int, trace_id: str, current: Optional[obs_tracing.Tracer]
) -> obs_tracing.Tracer:
    """The worker's tracer for one trace, installed process-wide so the
    engine's profile hooks record into it.  The pid-qualified id prefix
    keeps a respawned incarnation's span ids distinct from its
    predecessor's."""
    if current is not None and current.trace_id == trace_id:
        return current
    tracer = obs_tracing.Tracer(
        process=f"worker-{worker_id}",
        trace_id=trace_id,
        id_prefix=f"worker-{worker_id}.{os.getpid()}",
    )
    obs_tracing.set_tracer(tracer)
    return tracer


def worker_main(
    worker_id: int,
    handle: SharedGraphHandle,
    engine_spec: EngineSpec,
    task_queue,
    result_queue,
    fault_plan: Optional[FaultPlan],
    shared_depths: bool,
    obs_spec: Optional[ObsSpec] = None,
) -> None:
    """Run the worker loop until the ``None`` sentinel arrives."""
    plan = fault_plan or FaultPlan()
    if obs_spec is not None:
        obs_profile.configure(
            enabled=obs_spec.profile, sample_every=obs_spec.sample_every
        )
    tracer: Optional[obs_tracing.Tracer] = None
    # Pay JIT/compile cost once at spawn, not inside the first task's
    # timed span (a no-op when no native backend resolves).
    native.warmup()
    attached = attach_graph(handle)
    try:
        engine = engine_spec.build(attached.graph)
        while True:
            message = task_queue.get()
            if message is None:
                break
            (epoch, task_id, attempt, group, max_depth, want_depths,
             replay_plan, trace_ctx, result_name) = message
            start = time.perf_counter()
            spans: List[Tuple] = []
            try:
                if trace_ctx is not None:
                    tracer = _worker_tracer(worker_id, trace_ctx[0], tracer)
                    with tracer.span(
                        "worker.task",
                        parent=trace_ctx,
                        task_id=task_id,
                        attempt=attempt,
                        worker_id=worker_id,
                        group_size=len(group),
                    ):
                        plan.apply(task_id, attempt)
                        result = engine.run_group(
                            group, max_depth=max_depth, plan=replay_plan
                        )
                    spans = [s.to_dict() for s in tracer.drain()]
                else:
                    plan.apply(task_id, attempt)
                    result = engine.run_group(
                        group, max_depth=max_depth, plan=replay_plan
                    )
                wall = time.perf_counter() - start
                depth_spec = None
                depths = None
                if want_depths:
                    if shared_depths:
                        depth_spec = push_array(
                            result.depths, name=result_name
                        )
                    else:
                        depths = result.depths
                plan.apply_after_result(task_id, attempt)
                result_queue.put(
                    (
                        "ok",
                        worker_id,
                        epoch,
                        task_id,
                        attempt,
                        depth_spec,
                        depths,
                        result.counters,
                        result.groups[0],
                        wall,
                        spans,
                    )
                )
            except Exception as exc:  # surfaced to the parent as a task error
                if tracer is not None:
                    spans = [s.to_dict() for s in tracer.drain()]
                result_queue.put(
                    (
                        "error",
                        worker_id,
                        epoch,
                        task_id,
                        attempt,
                        str(exc),
                        traceback_mod.format_exc(),
                        spans,
                    )
                )
    finally:
        attached.close()
