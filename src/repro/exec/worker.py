"""Worker process entry point.

Each worker attaches the shared-memory graph once, builds its own
:class:`~repro.core.engine.IBFS` engine (bit-identical to the parent's:
same config, device model, and direction policy), and then loops on its
task queue.  A task is ``(epoch, task_id, attempt, group, max_depth,
want_depths)``; the reply on the shared result queue is either

``("ok", worker_id, epoch, task_id, attempt, depth_spec, depths,
counters, stats, wall_seconds)``
    where ``depth_spec`` is a :class:`~repro.exec.shm.SharedArraySpec`
    for the depth matrix (or ``None`` with ``depths`` carrying the
    array inline when shared transport is disabled), or

``("error", worker_id, epoch, task_id, attempt, message)``
    for any exception the task raised.

``epoch`` is the parent's run sequence number, echoed verbatim: task
ids restart at zero every run, so a straggler reply from a previous
run can only be told apart — and safely dropped — by its epoch.

The loop exits on a ``None`` sentinel.  Injected faults
(:class:`~repro.exec.faults.FaultPlan`) are applied before the engine
runs, keyed on ``(task_id, attempt)`` so they reproduce exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.engine import IBFS, IBFSConfig
from repro.bfs.direction import DirectionPolicy
from repro.gpusim.config import DeviceConfig
from repro.gpusim.device import Device
from repro.exec.faults import FaultPlan
from repro.exec.shm import SharedGraphHandle, attach_graph, push_array


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild the parent's engine."""

    config: IBFSConfig
    device_config: Optional[DeviceConfig] = None
    policy: Optional[DirectionPolicy] = None

    def build(self, graph) -> IBFS:
        device = Device(self.device_config) if self.device_config else None
        return IBFS(graph, self.config, device=device, policy=self.policy)


def worker_main(
    worker_id: int,
    handle: SharedGraphHandle,
    engine_spec: EngineSpec,
    task_queue,
    result_queue,
    fault_plan: Optional[FaultPlan],
    shared_depths: bool,
) -> None:
    """Run the worker loop until the ``None`` sentinel arrives."""
    plan = fault_plan or FaultPlan()
    attached = attach_graph(handle)
    try:
        engine = engine_spec.build(attached.graph)
        while True:
            message = task_queue.get()
            if message is None:
                break
            epoch, task_id, attempt, group, max_depth, want_depths = message
            start = time.perf_counter()
            try:
                plan.apply(task_id, attempt)
                result = engine.run_group(group, max_depth=max_depth)
                wall = time.perf_counter() - start
                depth_spec = None
                depths = None
                if want_depths:
                    if shared_depths:
                        depth_spec = push_array(result.depths)
                    else:
                        depths = result.depths
                result_queue.put(
                    (
                        "ok",
                        worker_id,
                        epoch,
                        task_id,
                        attempt,
                        depth_spec,
                        depths,
                        result.counters,
                        result.groups[0],
                        wall,
                    )
                )
            except Exception as exc:  # surfaced to the parent as a task error
                result_queue.put(
                    ("error", worker_id, epoch, task_id, attempt, str(exc))
                )
    finally:
        attached.close()
