"""Zero-copy CSR graph publication over POSIX shared memory.

The execution backend runs BFS groups in separate worker processes, but
every group traverses the *same* immutable graph.  Instead of pickling
O(|V| + |E|) arrays into each worker, the parent publishes the CSR
arrays (forward and reverse, plus the cached outdegree vector) into
``multiprocessing.shared_memory`` segments once per graph; workers map
the segments read-only and wrap them in a :class:`~repro.graph.csr.CSRGraph`
without copying a byte.

Publication is keyed by the graph's content fingerprint
(:func:`repro.service.cache.graph_cache_id`, memoized on the graph's
``_cache_id`` slot) and refcounted: two executors over the same graph
share one set of segments, and the segments are unlinked when the last
publisher releases them.

A second, smaller facility ships *results* back: :func:`push_array`
copies one ndarray into a fresh segment and returns a compact spec;
:func:`pop_array` reclaims it on the other side (attach, copy out,
unlink).  Depth matrices are by far the largest part of a task result,
so routing them around the pickle pipe keeps worker round-trips cheap.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ExecutorError
from repro.graph.csr import CSRGraph
from repro.service.cache import graph_cache_id

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can be used here."""
    return _shared_memory is not None


def _require_shm():
    if _shared_memory is None:  # pragma: no cover - exotic platforms
        raise ExecutorError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    return _shared_memory


@contextlib.contextmanager
def _untracked():
    """Suppress resource-tracker registration for segments made/attached
    inside the block.

    Attaching to an existing segment registers it with the resource
    tracker (bpo-38119), which would unlink it when the attaching
    process exits — destroying a segment the publisher still owns; and
    concurrent register/unregister pairs for one name race inside the
    tracker.  Segment lifetime here is managed explicitly (refcounts +
    atexit for graphs, pop/discard for task results), so registration
    is suppressed at the source.  Python 3.13's ``track=False`` makes
    this shim unnecessary.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic platforms
        yield
        return
    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister

    def register(name, rtype):
        if rtype != "shared_memory":
            original_register(name, rtype)

    def unregister(name, rtype):
        if rtype != "shared_memory":
            original_unregister(name, rtype)

    resource_tracker.register = register
    resource_tracker.unregister = unregister
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-materialize one ndarray from a segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable description of one published graph.

    Workers receive this instead of the graph itself and call
    :func:`attach_graph` to map the segments.
    """

    graph_id: str
    num_vertices: int
    num_edges: int
    arrays: Dict[str, SharedArraySpec]

    @property
    def has_reverse(self) -> bool:
        return "rev_row_offsets" in self.arrays


def _segment_name(tag: str) -> str:
    # Globally unique: shared-memory names are a system-wide namespace.
    return f"repro-{tag}-{os.getpid():x}-{secrets.token_hex(4)}"


def _create_segment(arr: np.ndarray, tag: str, name: str = None):
    shm_mod = _require_shm()
    arr = np.ascontiguousarray(arr)
    nbytes = max(int(arr.nbytes), 1)
    with _untracked():
        shm = shm_mod.SharedMemory(
            name=name or _segment_name(tag), create=True, size=nbytes
        )
    if arr.nbytes:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
    spec = SharedArraySpec(name=shm.name, shape=tuple(arr.shape), dtype=str(arr.dtype))
    return shm, spec


def _map_segment(spec: SharedArraySpec, writeable: bool = False):
    shm_mod = _require_shm()
    with _untracked():
        shm = shm_mod.SharedMemory(name=spec.name, create=False)
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    arr.flags.writeable = writeable
    return shm, arr


# ----------------------------------------------------------------------
# Graph publication (refcounted, keyed by content fingerprint)
# ----------------------------------------------------------------------
@dataclass
class _Publication:
    handle: SharedGraphHandle
    segments: List[object]
    refcount: int = 0


_REGISTRY: Dict[str, _Publication] = {}
_REGISTRY_LOCK = threading.Lock()


def publish_graph(graph: CSRGraph, include_reverse: bool = True) -> SharedGraphHandle:
    """Publish a graph's CSR arrays into shared memory (refcounted).

    Repeated publication of the same graph content returns the existing
    handle and bumps its refcount; every :func:`publish_graph` must be
    paired with one :func:`release_graph`.

    ``include_reverse`` also publishes the transpose CSR so workers can
    run bottom-up levels without an O(|E| log |E|) per-process rebuild.
    """
    graph_id = graph_cache_id(graph)
    with _REGISTRY_LOCK:
        pub = _REGISTRY.get(graph_id)
        if pub is not None:
            pub.refcount += 1
            return pub.handle

        arrays: Dict[str, np.ndarray] = {
            "row_offsets": graph.row_offsets,
            "col_indices": graph.col_indices,
            "out_degrees": graph.out_degrees(),
        }
        if include_reverse:
            rev = graph.reverse()
            arrays["rev_row_offsets"] = rev.row_offsets
            arrays["rev_col_indices"] = rev.col_indices

        segments: List[object] = []
        specs: Dict[str, SharedArraySpec] = {}
        try:
            for key, arr in arrays.items():
                shm, spec = _create_segment(arr, graph_id[-12:])
                segments.append(shm)
                specs[key] = spec
        except Exception:
            for shm in segments:
                _destroy_segment(shm)
            raise

        handle = SharedGraphHandle(
            graph_id=graph_id,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            arrays=specs,
        )
        _REGISTRY[graph_id] = _Publication(handle=handle, segments=segments, refcount=1)
        return handle


def release_graph(handle: SharedGraphHandle) -> None:
    """Drop one reference; unlink the segments when none remain."""
    with _REGISTRY_LOCK:
        pub = _REGISTRY.get(handle.graph_id)
        if pub is None:
            return
        pub.refcount -= 1
        if pub.refcount > 0:
            return
        del _REGISTRY[handle.graph_id]
        segments = pub.segments
    for shm in segments:
        _destroy_segment(shm)


def published_refcount(graph: CSRGraph) -> int:
    """Current refcount of a graph's publication (0 = not published)."""
    graph_id = graph_cache_id(graph)
    with _REGISTRY_LOCK:
        pub = _REGISTRY.get(graph_id)
        return pub.refcount if pub is not None else 0


def _destroy_segment(shm) -> None:
    try:
        shm.close()
    except Exception:  # pragma: no cover - best effort cleanup
        pass
    try:
        # unlink() would unregister a name this process never
        # registered (registration is suppressed), confusing the
        # tracker; suppress the matching unregister too.
        with _untracked():
            shm.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass


@atexit.register
def _cleanup_registry() -> None:  # pragma: no cover - interpreter shutdown
    with _REGISTRY_LOCK:
        pubs = list(_REGISTRY.values())
        _REGISTRY.clear()
    for pub in pubs:
        for shm in pub.segments:
            _destroy_segment(shm)


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------
@dataclass
class AttachedGraph:
    """A worker's zero-copy view of a published graph.

    Keeps the mapped segments alive for as long as the graph is in use
    (``CSRGraph`` uses ``__slots__``, so the references cannot ride on
    the graph object itself).
    """

    graph: CSRGraph
    segments: List[object] = field(default_factory=list)

    def close(self) -> None:
        for shm in self.segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best effort cleanup
                pass
        self.segments = []

    def __enter__(self) -> "AttachedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_graph(handle: SharedGraphHandle) -> AttachedGraph:
    """Map a published graph read-only in the current process.

    The returned graph has its outdegree cache and content fingerprint
    pre-installed, and — when the publisher included the transpose —
    its reverse CSR pre-wired, so no derived structure is recomputed in
    the worker.
    """
    segments: List[object] = []
    mapped: Dict[str, np.ndarray] = {}
    try:
        for key, spec in handle.arrays.items():
            shm, arr = _map_segment(spec)
            segments.append(shm)
            mapped[key] = arr
    except Exception:
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
        raise

    graph = CSRGraph(mapped["row_offsets"], mapped["col_indices"], validate=False)
    graph._out_degrees = mapped["out_degrees"]
    graph._cache_id = handle.graph_id
    if handle.has_reverse:
        rev = CSRGraph(
            mapped["rev_row_offsets"], mapped["rev_col_indices"], validate=False
        )
        rev._reverse = graph
        graph._reverse = rev
    return AttachedGraph(graph=graph, segments=segments)


# ----------------------------------------------------------------------
# One-shot array transport (task results)
# ----------------------------------------------------------------------
def result_segment_name() -> str:
    """Pre-allocate a segment name for :func:`push_array`.

    Generated by the *receiver* before the sender runs, so a sender
    that dies between creating the segment and reporting its spec
    cannot orphan a segment nobody can name — the receiver reclaims it
    with :func:`discard_segment` unconditionally.
    """
    return _segment_name("out")


def push_array(arr: np.ndarray, name: str = None) -> SharedArraySpec:
    """Copy one array into a fresh segment; the receiver owns cleanup.

    ``name`` pins the segment name (see :func:`result_segment_name`);
    without it a fresh unique name is generated.
    """
    shm, spec = _create_segment(np.ascontiguousarray(arr), "out", name=name)
    # Close our mapping but do NOT unlink: pop_array() unlinks after
    # copying the payload out on the receiving side.
    shm.close()
    return spec


def pop_array(spec: SharedArraySpec) -> np.ndarray:
    """Reclaim an array pushed by :func:`push_array` (copy + unlink)."""
    shm, view = _map_segment(spec)
    try:
        return np.array(view, copy=True)
    finally:
        _destroy_segment(shm)


def discard_array(spec: SharedArraySpec) -> None:
    """Unlink a pushed array without reading it (stale/duplicate result)."""
    discard_segment(spec.name)


def discard_segment(name: str) -> None:
    """Unlink a segment by name alone; a no-op when it does not exist.

    This is the crash-cleanup path: the receiver knows the names it
    pre-allocated (:func:`result_segment_name`) even when the sender
    died before shipping the spec back.
    """
    shm_mod = _require_shm()
    try:
        with _untracked():
            shm = shm_mod.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return
    _destroy_segment(shm)
