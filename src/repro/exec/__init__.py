"""repro.exec — multi-process execution backend for iBFS groups.

The paper's multi-GPU observation (section 8.3) — independent BFS
groups need no communication, so scaling is purely a placement problem
— is simulated by :mod:`repro.gpusim.cluster` and made *real* here:

* :mod:`repro.exec.shm` — zero-copy CSR graph publication over
  ``multiprocessing.shared_memory`` (refcounted, fingerprint-keyed);
* :mod:`repro.exec.scheduler` — predicted-cost dispatch reusing the
  cluster's LPT/round-robin policies plus a work-stealing task board;
* :mod:`repro.exec.worker` — the persistent worker process loop;
* :mod:`repro.exec.faults` — deterministic fault injection, the
  crash/timeout/retry budget, and the fault event log;
* :mod:`repro.exec.executor` — :class:`GroupExecutor`, which merges
  per-group results bit-identically to serial :meth:`IBFS.run`.
"""

from repro.exec.executor import ExecConfig, ExecStats, GroupExecutor
from repro.exec.faults import FaultEvent, FaultLog, FaultPlan, FaultPolicy
from repro.exec.scheduler import (
    SCHEDULER_NAMES,
    CostModel,
    DispatchPolicy,
    LPTDispatch,
    RoundRobinDispatch,
    TaskBoard,
    WorkStealingDispatch,
    get_policy,
)
from repro.exec.shm import (
    AttachedGraph,
    SharedArraySpec,
    SharedGraphHandle,
    attach_graph,
    publish_graph,
    published_refcount,
    release_graph,
    shared_memory_available,
)
from repro.exec.worker import EngineSpec, ObsSpec

__all__ = [
    "ExecConfig",
    "ExecStats",
    "GroupExecutor",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "FaultPolicy",
    "SCHEDULER_NAMES",
    "CostModel",
    "DispatchPolicy",
    "LPTDispatch",
    "RoundRobinDispatch",
    "TaskBoard",
    "WorkStealingDispatch",
    "get_policy",
    "AttachedGraph",
    "SharedArraySpec",
    "SharedGraphHandle",
    "attach_graph",
    "publish_graph",
    "published_refcount",
    "release_graph",
    "shared_memory_available",
    "EngineSpec",
    "ObsSpec",
]
