"""Task placement for the process executor.

Scheduling happens in two stages, mirroring how the cluster study
(figure 17) separates *static assignment* from *runtime balance*:

1. a :class:`DispatchPolicy` pre-assigns tasks to per-worker deques
   using predicted costs — the LPT and round-robin policies are the
   exact functions the simulated cluster uses
   (:mod:`repro.gpusim.cluster`), so the simulated and real backends
   share one scheduling vocabulary;
2. at runtime the parent hands each idle worker the next task from its
   own deque; under the work-stealing policy an idle worker with an
   empty deque steals from the *back* of the most loaded peer's deque
   (classic steal-from-the-tail, taking the victim's cheapest pending
   work last-assigned first).

Costs come from :class:`CostModel`: the degree-sum heuristic (a group's
joint kernel inspects the union of its sources' neighborhoods, so the
sum of source outdegrees plus a per-level |V| term tracks its work),
rescaled by an EWMA of observed wall time per predicted unit once real
measurements exist.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.errors import ExecutorError
from repro.graph.csr import CSRGraph
from repro.gpusim.cluster import schedule_lpt, schedule_round_robin

#: Scheduler names accepted by the executor/CLI.
SCHEDULER_NAMES = ("steal", "lpt", "round_robin")


class CostModel:
    """Predicts per-group execution cost; refines itself from feedback.

    ``predict`` returns abstract cost units (relative ordering is what
    the dispatch policies consume); ``predict_seconds`` scales them by
    the learned seconds-per-unit rate, which starts at ``None`` (no
    observation yet) and is refined by an exponentially weighted moving
    average over observed (group, wall-time) pairs.
    """

    def __init__(self, graph: CSRGraph, smoothing: float = 0.3) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ExecutorError("smoothing must be in (0, 1]")
        self._degrees = graph.out_degrees()
        #: Per-level fixed cost: a joint kernel touches status words for
        #: every vertex regardless of frontier size.
        self._base = float(max(graph.num_vertices, 1))
        self._smoothing = smoothing
        self._rate: Optional[float] = None
        self.observations = 0

    def predict(self, group: Sequence[int]) -> float:
        """Degree-sum heuristic cost of one group, in abstract units."""
        degree_sum = float(self._degrees[np.asarray(group, dtype=np.int64)].sum())
        return self._base + degree_sum

    def predict_seconds(self, group: Sequence[int]) -> Optional[float]:
        """Wall-clock estimate; ``None`` until the first observation."""
        if self._rate is None:
            return None
        return self._rate * self.predict(group)

    def observe(self, group: Sequence[int], wall_seconds: float) -> None:
        """Fold one measured (group, wall time) pair into the rate."""
        if wall_seconds < 0:
            raise ExecutorError("wall_seconds must be non-negative")
        units = self.predict(group)
        if units <= 0:
            return
        rate = wall_seconds / units
        if self._rate is None:
            self._rate = rate
        else:
            a = self._smoothing
            self._rate = a * rate + (1.0 - a) * self._rate
        self.observations += 1

    @property
    def seconds_per_unit(self) -> Optional[float]:
        return self._rate


class DispatchPolicy:
    """Static pre-assignment of tasks to workers (no runtime stealing)."""

    name = "base"
    allow_stealing = False

    def assign(self, costs: Sequence[float], num_workers: int) -> np.ndarray:
        """Worker id per task (same contract as the cluster schedulers)."""
        raise NotImplementedError


class RoundRobinDispatch(DispatchPolicy):
    """Cost-blind striping; the paper's static-split baseline."""

    name = "round_robin"

    def assign(self, costs: Sequence[float], num_workers: int) -> np.ndarray:
        return schedule_round_robin(costs, num_workers)


class LPTDispatch(DispatchPolicy):
    """Longest-predicted-task-first onto the least loaded worker."""

    name = "lpt"

    def assign(self, costs: Sequence[float], num_workers: int) -> np.ndarray:
        return schedule_lpt(costs, num_workers)


class WorkStealingDispatch(LPTDispatch):
    """LPT pre-assignment plus runtime stealing from loaded peers.

    Static LPT balances *predicted* cost; stealing repairs whatever the
    prediction got wrong once real completion times skew the deques.
    """

    name = "steal"
    allow_stealing = True


_POLICIES = {
    RoundRobinDispatch.name: RoundRobinDispatch,
    LPTDispatch.name: LPTDispatch,
    WorkStealingDispatch.name: WorkStealingDispatch,
}


def get_policy(name: str) -> DispatchPolicy:
    """Dispatch policy by CLI name (``steal``, ``lpt``, ``round_robin``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ExecutorError(
            f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
        ) from None


class TaskBoard:
    """Parent-side per-worker deques with optional work stealing.

    The parent mediates all placement (workers never see each other),
    so "stealing" is the parent popping from the back of the richest
    victim's deque when an idle worker's own deque is empty.  All
    tie-breaks are by lowest worker id, keeping placement — though not
    completion order — deterministic for a fixed policy and worker
    count.
    """

    def __init__(
        self,
        assignment: Sequence[int],
        costs: Sequence[float],
        num_workers: int,
        allow_stealing: bool,
    ) -> None:
        if num_workers <= 0:
            raise ExecutorError("num_workers must be positive")
        if len(assignment) != len(costs):
            raise ExecutorError("assignment and costs must align")
        self._costs = list(costs)
        self._deques: List[Deque[int]] = [deque() for _ in range(num_workers)]
        self._loads = [0.0] * num_workers
        self.allow_stealing = allow_stealing
        self.steals = 0
        for task_id, worker in enumerate(assignment):
            worker = int(worker)
            if not 0 <= worker < num_workers:
                raise ExecutorError(
                    f"task {task_id} assigned to worker {worker} out of range"
                )
            self._deques[worker].append(task_id)
            self._loads[worker] += self._costs[task_id]

    def remaining(self) -> int:
        """Tasks still queued (excludes tasks already handed out)."""
        return sum(len(d) for d in self._deques)

    def load(self, worker: int) -> float:
        return self._loads[worker]

    def next_task(self, worker: int) -> Optional[int]:
        """Next task for ``worker``: own deque front, else steal."""
        own = self._deques[worker]
        if own:
            task_id = own.popleft()
            self._loads[worker] -= self._costs[task_id]
            return task_id
        if not self.allow_stealing:
            return None
        victim = self._richest_victim()
        if victim is None:
            return None
        task_id = self._deques[victim].pop()
        self._loads[victim] -= self._costs[task_id]
        self.steals += 1
        return task_id

    def _richest_victim(self) -> Optional[int]:
        best: Optional[int] = None
        best_load = 0.0
        for worker, d in enumerate(self._deques):
            if not d:
                continue
            load = self._loads[worker]
            if best is None or load > best_load:
                best = worker
                best_load = load
        return best

    def requeue(self, task_id: int) -> None:
        """Put a failed task back at the front of the lightest deque so a
        retry runs at the next dispatch opportunity."""
        worker = int(np.argmin(self._loads))
        self._deques[worker].appendleft(task_id)
        self._loads[worker] += self._costs[task_id]
