"""The multi-process group executor.

:class:`GroupExecutor` is the real-parallelism counterpart of the
simulated cluster (section 8.3): iBFS groups are independent, so the
only problems worth solving are placement and failure — exactly what
this module does.  The parent process

1. publishes the CSR graph into shared memory once
   (:mod:`repro.exec.shm`),
2. forms groups with the *same* GroupBy code the serial engine uses,
3. pre-assigns them to persistent worker processes through a pluggable
   dispatch policy (:mod:`repro.exec.scheduler`) and hands idle workers
   work one task at a time — stealing from loaded peers' deques under
   the default policy,
4. watches for worker crashes and hangs, retrying tasks within the
   :class:`~repro.exec.faults.FaultPolicy` budget and respawning
   workers, degrading to in-process execution when the pool is lost,
5. merges per-group results *in group order*, which makes the final
   :class:`~repro.core.result.ConcurrentResult` bit-identical to a
   serial :meth:`IBFS.run` no matter how completion interleaved.

``seconds`` on returned results stays *simulated* time (identical to
the serial engine); real wall-clock time and scheduler/fault behavior
land in :class:`ExecStats` (``last_stats``).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutorError, ReproError, TraversalError
from repro.graph.csr import CSRGraph
from repro.gpusim.cluster import Cluster
from repro.gpusim.config import DeviceConfig
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.plan.policy import DirectionPolicy, Policy
from repro.plan.types import RunPlan
from repro.core.engine import IBFS, IBFSConfig
from repro.core.result import ConcurrentResult, GroupStats
from repro.exec.faults import (
    FaultEvent,
    FaultLog,
    FaultPlan,
    FaultPolicy,
    crash_error,
    task_error,
    timeout_error,
)
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.exec.scheduler import (
    SCHEDULER_NAMES,
    CostModel,
    TaskBoard,
    get_policy,
)
from repro.exec.shm import (
    discard_array,
    discard_segment,
    pop_array,
    publish_graph,
    release_graph,
    result_segment_name,
    shared_memory_available,
)
from repro.exec.worker import EngineSpec, ObsSpec, worker_main

#: Seconds the parent blocks on the result queue per scheduling pass;
#: bounds crash/hang detection latency, not throughput.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class ExecConfig:
    """Configuration of a :class:`GroupExecutor`.

    Attributes
    ----------
    num_workers:
        Persistent worker processes; ``0`` means execute in-process
        (no pool, no shared memory — the degraded mode, explicitly).
    scheduler:
        ``"steal"`` (LPT pre-assignment + work stealing, default),
        ``"lpt"``, or ``"round_robin"``.
    faults:
        Retry/timeout/respawn budget (see
        :class:`~repro.exec.faults.FaultPolicy`).
    fault_plan:
        Deterministic fault injection shipped to workers (tests/chaos).
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (workers attach shared memory either way).
    fallback:
        When true (default), a pool that cannot be started degrades to
        in-process execution instead of raising.
    share_reverse:
        Also publish the transpose CSR so workers skip the reverse
        build (bottom-up traversal needs it).
    shared_depths:
        Ship depth matrices back through one-shot shared-memory
        segments instead of the pickle pipe.
    """

    num_workers: int = 2
    scheduler: str = "steal"
    faults: FaultPolicy = FaultPolicy()
    fault_plan: Optional[FaultPlan] = None
    start_method: Optional[str] = None
    fallback: bool = True
    share_reverse: bool = True
    shared_depths: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ExecutorError("num_workers must be non-negative")
        if self.scheduler not in SCHEDULER_NAMES:
            raise ExecutorError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_NAMES}"
            )


@dataclass
class ExecStats:
    """Observability for one executor run (wall-clock, not simulated)."""

    backend: str
    num_workers: int
    scheduler: str
    tasks: int
    wall_seconds: float = 0.0
    steals: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    task_errors: int = 0
    respawns: int = 0
    degraded: bool = False
    per_worker_tasks: Dict[int, int] = field(default_factory=dict)
    events: List[FaultEvent] = field(default_factory=list)
    #: Diagnostics of every failed attempt — exception text, worker
    #: traceback, and the in-flight task id — in observation order
    #: (:meth:`FaultEvent.last_words` payloads).
    last_words: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = {
            "backend": self.backend,
            "num_workers": self.num_workers,
            "scheduler": self.scheduler,
            "tasks": self.tasks,
            "wall_seconds": self.wall_seconds,
            "steals": self.steals,
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "task_errors": self.task_errors,
            "respawns": self.respawns,
            "degraded": self.degraded,
            "per_worker_tasks": dict(self.per_worker_tasks),
            "last_words": [dict(w) for w in self.last_words],
        }
        return payload

    def publish(self, hub: Optional[obs_metrics.MetricsHub] = None) -> None:
        """Fold this run's outcome into the process-wide metrics hub."""
        # Explicit None test: an empty MetricsHub is falsy (len 0).
        hub = hub if hub is not None else obs_metrics.get_hub()
        pairs = (
            ("exec_tasks_total", "Group tasks executed", self.tasks),
            ("exec_steals_total", "Tasks stolen across workers", self.steals),
            ("exec_retries_total", "Task attempts retried", self.retries),
            ("exec_crashes_total", "Worker crashes observed", self.crashes),
            ("exec_timeouts_total", "Task watchdog timeouts", self.timeouts),
            ("exec_task_errors_total", "Task errors raised in workers",
             self.task_errors),
            ("exec_respawns_total", "Workers respawned", self.respawns),
        )
        for name, help_text, value in pairs:
            hub.counter(name, help_text).inc(value)
        hub.counter(
            "exec_degraded_runs_total",
            "Runs that lost the pool and finished in-process",
        ).inc(1 if self.degraded else 0)
        hub.histogram(
            "exec_run_wall_seconds", "Wall-clock seconds per executor run"
        ).observe(self.wall_seconds)


@dataclass
class _Task:
    group: List[int]
    max_depth: Optional[int]
    want_depths: bool
    plan: Optional[RunPlan] = None


class _Worker:
    """Parent-side record of one worker incarnation."""

    def __init__(self, worker_id: int, process, task_queue) -> None:
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue

    def alive(self) -> bool:
        return self.process.is_alive()


class GroupExecutor:
    """Runs iBFS groups concurrently across worker processes.

    Construct it over the same graph and engine configuration as the
    serial engine it replaces; results are bit-identical.  Use as a
    context manager (or call :meth:`close`) to tear the pool and the
    shared-memory segments down deterministically.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[IBFSConfig] = None,
        exec_config: Optional[ExecConfig] = None,
        device_config: Optional[DeviceConfig] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.exec_config = exec_config or ExecConfig()
        self._device_config = device_config
        self._policy_obj = policy
        self._planner = planner
        device = Device(device_config) if device_config else None
        #: Local engine: grouping, capacity checks, and the in-process
        #: execution path all run through it.
        self.engine = IBFS(
            graph, config, device=device, policy=policy, planner=planner
        )
        self.cost_model = CostModel(graph)
        self._dispatch_policy = get_policy(self.exec_config.scheduler)
        self._handle = None
        self._ctx = None
        self._workers: Dict[int, _Worker] = {}
        self._result_queue = None
        self._respawns_left = self.exec_config.faults.respawn_limit
        self._pool_broken = False
        self._closed = False
        #: Run sequence number: task ids restart at zero every run, so
        #: a straggler reply from an earlier run is identified (and its
        #: shared-memory payload reclaimed) by its epoch alone.
        self._epoch = 0
        #: Result-segment names allocated for in-flight dispatches.
        #: Names are parent-generated (:func:`result_segment_name`), so
        #: a worker that dies after pushing its depth matrix but before
        #: replying cannot orphan a segment — whatever is still listed
        #: here is reclaimed on fault resolution and pool teardown.
        self._pending_segments: set = set()
        #: Stats of the most recent run/map_groups call.
        self.last_stats: Optional[ExecStats] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """``"process"`` when the pool is usable, else ``"inprocess"``."""
        if (
            self.exec_config.num_workers <= 0
            or self._pool_broken
            or not shared_memory_available()
        ):
            return "inprocess"
        return "process"

    def __enter__(self) -> "GroupExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop workers, drain queues, release the shared graph."""
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()

    def rebind_graph(self, graph: CSRGraph) -> None:
        """Re-point the executor at a new graph (an epoch swap).

        Workers map one published shm graph for their whole lifetime,
        so the swap tears the pool down; the next dispatch republishes
        the new graph and respawns workers against it.  The respawn
        budget resets — a fresh pool over a fresh graph is not a fault
        recovery.
        """
        if self._closed:
            raise ExecutorError("executor is closed")
        self._teardown_pool()
        self._pool_broken = False
        self._respawns_left = self.exec_config.faults.respawn_limit
        self.graph = graph
        device = Device(self._device_config) if self._device_config else None
        self.engine = IBFS(
            graph,
            self.engine.config,
            device=device,
            policy=self._policy_obj,
            planner=self._planner,
        )
        self.cost_model = CostModel(graph)

    def _teardown_pool(self) -> None:
        for worker in self._workers.values():
            try:
                worker.task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.perf_counter() + 2.0
        for worker in self._workers.values():
            worker.process.join(timeout=max(0.0, deadline - time.perf_counter()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers.values():
            try:
                worker.task_queue.close()
            except Exception:  # pragma: no cover
                pass
        self._workers = {}
        if self._result_queue is not None:
            self._drain_result_queue()
            try:
                self._result_queue.close()
            except Exception:  # pragma: no cover
                pass
            self._result_queue = None
        # Workers are dead and the queue is drained: any name still
        # pending belongs to a reply that never arrived — a crash
        # between push_array and the reply put — so unlink it now,
        # before the graph segments go, to leave /dev/shm clean.
        for name in list(self._pending_segments):
            self._reclaim_segment(name)
        if self._handle is not None:
            release_graph(self._handle)
            self._handle = None

    def _drain_result_queue(self) -> None:
        """Reclaim shared-memory payloads of unread replies.

        Workers killed mid-teardown (or outlived by a raised failure)
        may have pushed depth segments whose replies were never read;
        dropping the queue without unlinking them would leak
        ``/dev/shm`` space for the life of the machine.
        """
        while True:
            try:
                message = self._result_queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            if message and message[0] == "ok" and message[5] is not None:
                self._pending_segments.discard(message[5].name)
                try:
                    discard_array(message[5])
                except Exception:  # pragma: no cover - best effort
                    pass

    def _ensure_pool(self) -> bool:
        """Start the pool if needed; False means run in-process."""
        if self._closed:
            raise ExecutorError("executor is closed")
        if self.backend != "process":
            return False
        if self._workers:
            return True
        try:
            self._start_pool()
            return True
        except ReproError:
            raise
        except Exception as exc:
            self._pool_broken = True
            self._teardown_pool()
            if self.exec_config.fallback:
                return False
            raise ExecutorError(f"could not start worker pool: {exc}") from exc

    def _start_pool(self) -> None:
        method = self.exec_config.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(method)
        self._handle = publish_graph(
            self.graph, include_reverse=self.exec_config.share_reverse
        )
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.exec_config.num_workers):
            self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> None:
        task_queue = (
            self._workers[worker_id].task_queue
            if worker_id in self._workers
            else self._ctx.Queue()
        )
        spec = EngineSpec(
            config=self.engine.config,
            device_config=self._device_config,
            policy=self._policy_obj,
            planner=self._planner,
        )
        profile_config = obs_profile.get_config()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self._handle,
                spec,
                task_queue,
                self._result_queue,
                self.exec_config.fault_plan,
                self.exec_config.shared_depths,
                ObsSpec(
                    profile=profile_config.enabled,
                    sample_every=profile_config.sample_every,
                ),
            ),
            daemon=True,
            name=f"repro-exec-{worker_id}",
        )
        process.start()
        self._workers[worker_id] = _Worker(worker_id, process, task_queue)

    # ------------------------------------------------------------------
    # Public execution surface
    # ------------------------------------------------------------------
    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
        cluster: Optional[Cluster] = None,
    ) -> ConcurrentResult:
        """Traverse from all sources; same contract and bit-identical
        output as :meth:`repro.core.engine.IBFS.run`."""
        sources = [int(s) for s in sources]
        if not sources:
            raise TraversalError("at least one source is required")
        groups = self.engine.make_groups(sources)
        tasks = [_Task(list(g), max_depth, store_depths) for g in groups]
        outcomes = self._execute(tasks, collect_errors=False)

        counters = ProfilerCounters()
        group_stats: List[GroupStats] = []
        depth_rows = {} if store_depths else None
        for task, (depths, task_counters, stats) in zip(tasks, outcomes):
            counters.merge(task_counters)
            group_stats.append(stats)
            if depth_rows is not None:
                for row, source in enumerate(task.group):
                    depth_rows[source] = depths[row]

        if cluster is not None:
            seconds = cluster.run([g.seconds for g in group_stats]).makespan
        else:
            seconds = sum(g.seconds for g in group_stats)
        matrix = None
        if depth_rows is not None:
            matrix = np.stack([depth_rows[s] for s in sources])
        return ConcurrentResult(
            engine=self.engine.name,
            sources=sources,
            seconds=seconds,
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
            groups=group_stats,
        )

    def run_group(
        self,
        group: Sequence[int],
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ) -> ConcurrentResult:
        """Execute one pre-formed group (the serving layer's unit)."""
        results = self.map_groups([(group, max_depth, plan)])
        return results[0]

    def map_groups(
        self,
        specs: Sequence[Tuple],
        return_errors: bool = False,
    ) -> List[Union[ConcurrentResult, ReproError]]:
        """Execute many pre-formed groups concurrently.

        Each spec is ``(group, max_depth)`` or ``(group, max_depth,
        plan)`` — the optional :class:`~repro.plan.types.RunPlan` ships
        to the worker and replays there instead of re-running the
        planner heuristics.  Returns one :class:`ConcurrentResult` per
        spec, in spec order.  With ``return_errors`` a failed group
        yields its error object in place of a result (so callers with
        their own retry policy — the serving layer — handle failures
        per batch); otherwise the first failure raises.
        """
        if not specs:
            return []
        tasks = []
        for spec in specs:
            group, max_depth = spec[0], spec[1]
            replay = spec[2] if len(spec) > 2 else None
            group = [int(s) for s in group]
            self._validate_group(group)
            tasks.append(_Task(group, max_depth, True, replay))
        outcomes = self._execute(tasks, collect_errors=return_errors)
        results: List[Union[ConcurrentResult, ReproError]] = []
        for task, outcome in zip(tasks, outcomes):
            if isinstance(outcome, ReproError):
                results.append(outcome)
                continue
            depths, task_counters, stats = outcome
            results.append(
                ConcurrentResult(
                    engine=self.engine.name,
                    sources=task.group,
                    seconds=stats.seconds,
                    counters=task_counters,
                    depths=np.asarray(depths),
                    num_vertices=self.graph.num_vertices,
                    groups=[stats],
                )
            )
        return results

    def _validate_group(self, group: List[int]) -> None:
        """Mirror the serial engine's run_group validation in the parent
        so malformed groups fail with the same typed error, untried."""
        if not group:
            raise TraversalError("a group needs at least one source")
        if len(set(group)) != len(group):
            raise TraversalError("group sources must be distinct")
        for s in group:
            if not 0 <= s < self.graph.num_vertices:
                raise TraversalError(f"source {s} out of range")
        capacity = self.engine.effective_group_size()
        if len(group) > capacity:
            raise TraversalError(
                f"group of {len(group)} exceeds the effective group size "
                f"{capacity}"
            )

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------
    def _execute(self, tasks: List[_Task], collect_errors: bool):
        start = time.perf_counter()
        tracer = obs_tracing.get_tracer()
        if not self._ensure_pool():
            stats = ExecStats(
                backend="inprocess",
                num_workers=0,
                scheduler=self.exec_config.scheduler,
                tasks=len(tasks),
            )
            with tracer.span(
                "exec.run", backend="inprocess", tasks=len(tasks),
                scheduler=self.exec_config.scheduler,
            ):
                outcomes = [self._run_local(t) for t in tasks]
            stats.wall_seconds = time.perf_counter() - start
            self.last_stats = stats
            stats.publish()
            return outcomes
        stats = ExecStats(
            backend="process",
            num_workers=len(self._workers),
            scheduler=self.exec_config.scheduler,
            tasks=len(tasks),
        )
        try:
            with tracer.span(
                "exec.run", backend="process", tasks=len(tasks),
                scheduler=self.exec_config.scheduler,
                num_workers=len(self._workers),
            ):
                outcomes = self._execute_pool(tasks, collect_errors, stats)
        except BaseException:
            # A raised failure can leave workers mid-task; reset so the
            # next call starts from a clean pool.
            self._teardown_pool()
            raise
        stats.wall_seconds = time.perf_counter() - start
        self.last_stats = stats
        stats.publish()
        return outcomes

    def _run_local(self, task: _Task) -> tuple:
        wall_start = time.perf_counter()
        with obs_tracing.get_tracer().span(
            "exec.local_task", group_size=len(task.group),
            replay=task.plan is not None,
        ):
            result = self.engine.run_group(
                task.group, max_depth=task.max_depth, plan=task.plan
            )
        wall = time.perf_counter() - wall_start
        self.cost_model.observe(task.group, wall)
        self._task_wall_histogram().observe(wall)
        depths = result.depths if task.want_depths else None
        return depths, result.counters, result.groups[0]

    def _task_wall_histogram(self) -> obs_metrics.Histogram:
        """Per-task wall-clock distribution in the process-wide hub;
        looked up per call so a test that swaps the hub is honored."""
        return obs_metrics.get_hub().histogram(
            "exec_task_wall_seconds",
            "Wall-clock seconds per group task (any backend)",
        )

    def _execute_pool(self, tasks: List[_Task], collect_errors: bool, stats: ExecStats):
        policy = self.exec_config.faults
        self._epoch += 1
        log = FaultLog()
        n = len(tasks)
        costs = [self.cost_model.predict(t.group) for t in tasks]
        board = TaskBoard(
            self._dispatch_policy.assign(costs, len(self._workers)),
            costs,
            len(self._workers),
            self._dispatch_policy.allow_stealing,
        )
        outcomes: List[Optional[object]] = [None] * n
        attempts = [0] * n
        pending = set(range(n))
        #: worker_id -> (task_id, attempt, started, dispatch_span,
        #: result_name).
        busy: Dict[
            int, Tuple[int, int, float, Optional[object], Optional[str]]
        ] = {}

        def fail_task(task_id: int, error: ReproError) -> None:
            if policy.fail_fast or not collect_errors:
                raise error
            outcomes[task_id] = error
            pending.discard(task_id)

        def task_failed(task_id: int, attempt: int, make_error) -> None:
            attempts[task_id] = attempt + 1
            if policy.fail_fast:
                raise make_error()
            if policy.exhausted(attempts[task_id]):
                fail_task(task_id, make_error())
            else:
                stats.retries += 1
                log.record("retry", task_id=task_id, attempt=attempts[task_id])
                board.requeue(task_id)

        while pending:
            self._reap_dead(busy, stats, log, task_failed)
            self._watchdog(busy, policy, stats, log, task_failed)
            self._hand_out(board, busy, tasks, attempts, stats)
            if not pending:
                break
            if not busy:
                # Nothing in flight yet work remains: the pool is gone
                # (all workers dead past the respawn budget).
                self._degrade(tasks, pending, outcomes, stats, log)
                break
            message = self._next_message()
            if message is None:
                continue
            self._handle_message(
                message, tasks, outcomes, attempts, pending, busy, stats, log,
                task_failed,
            )

        stats.steals += board.steals
        stats.events = log.events
        return outcomes

    # -- pool mechanics ------------------------------------------------
    def _hand_out(self, board, busy, tasks, attempts, stats) -> None:
        tracer = obs_tracing.get_tracer()
        for worker_id in sorted(self._workers):
            if worker_id in busy or not self._workers[worker_id].alive():
                continue
            task_id = board.next_task(worker_id)
            if task_id is None:
                continue
            task = tasks[task_id]
            # One detached (overlapping) span per in-flight dispatch;
            # its context rides the task message so the worker's spans
            # parent onto it, and it closes when the reply (or the
            # fault handler) resolves the attempt.
            span = tracer.start_span(
                "exec.dispatch",
                detached=True,
                task_id=task_id,
                worker_id=worker_id,
                attempt=attempts[task_id],
                group_size=len(task.group),
            )
            # Name the result segment in the parent so it survives —
            # and can be reclaimed after — a worker crash between
            # push_array and the reply.
            result_name = None
            if task.want_depths and self.exec_config.shared_depths:
                result_name = result_segment_name()
                self._pending_segments.add(result_name)
            self._workers[worker_id].task_queue.put(
                (
                    self._epoch,
                    task_id,
                    attempts[task_id],
                    task.group,
                    task.max_depth,
                    task.want_depths,
                    task.plan,
                    span.context if span is not None else None,
                    result_name,
                )
            )
            busy[worker_id] = (
                task_id, attempts[task_id], time.perf_counter(), span,
                result_name,
            )
            stats.per_worker_tasks[worker_id] = (
                stats.per_worker_tasks.get(worker_id, 0) + 1
            )

    @staticmethod
    def _finish_dispatch(entry, status: str = "ok", **attrs) -> None:
        """Close the dispatch span of a resolved busy entry."""
        if entry is None:
            return
        span = entry[3]
        if span is not None:
            span.attrs.update(attrs)
            obs_tracing.get_tracer().finish_span(span, status=status)

    def _next_message(self):
        try:
            return self._result_queue.get(timeout=_POLL_SECONDS)
        except queue_mod.Empty:
            return None

    def _handle_message(
        self, message, tasks, outcomes, attempts, pending, busy, stats, log,
        task_failed,
    ) -> None:
        kind = message[0]
        tracer = obs_tracing.get_tracer()
        if kind == "ok":
            (_, worker_id, epoch, task_id, attempt, depth_spec, depths,
             counters, gstats, wall, spans) = message
            stale = (
                epoch != self._epoch
                or task_id not in pending
                or attempt != attempts[task_id]
            )
            if stale:
                # A straggler's spans (like its depths) belong to a
                # finished attempt; ingesting them would duplicate the
                # retry's — drop the whole reply.
                if depth_spec is not None:
                    self._pending_segments.discard(depth_spec.name)
                    discard_array(depth_spec)
                return
            if depth_spec is not None:
                self._pending_segments.discard(depth_spec.name)
                depths = pop_array(depth_spec)
            outcomes[task_id] = (depths, counters, gstats)
            pending.discard(task_id)
            self._finish_dispatch(busy.pop(worker_id, None))
            tracer.ingest(spans)
            self.cost_model.observe(tasks[task_id].group, wall)
            self._task_wall_histogram().observe(wall)
            return
        if kind == "error":
            (_, worker_id, epoch, task_id, attempt, detail, worker_tb,
             spans) = message
            if (
                epoch != self._epoch
                or task_id not in pending
                or attempt != attempts[task_id]
            ):
                return
            entry = busy.pop(worker_id, None)
            self._finish_dispatch(entry, status="error", error=detail)
            if entry is not None:
                self._reclaim_segment(entry[4])
            tracer.ingest(spans)
            stats.task_errors += 1
            event = log.record(
                "task_error",
                task_id=task_id,
                worker_id=worker_id,
                attempt=attempt,
                detail=detail,
                traceback=worker_tb,
            )
            stats.last_words.append(event.last_words())
            task_failed(
                task_id,
                attempt,
                lambda: task_error(
                    task_id, worker_id, attempt, detail, worker_tb
                ),
            )

    def _reap_dead(self, busy, stats, log, task_failed) -> None:
        for worker_id in list(self._workers):
            worker = self._workers[worker_id]
            if worker.alive():
                continue
            entry = busy.pop(worker_id, None)
            if entry is not None:
                task_id, attempt = entry[0], entry[1]
                stats.crashes += 1
                detail = f"exitcode {worker.process.exitcode}"
                self._finish_dispatch(entry, status="error", error=detail)
                # The worker may have pushed its result segment before
                # dying; the parent named it, so it can be unlinked
                # without ever seeing the reply.
                self._reclaim_segment(entry[4])
                event = log.record(
                    "crash",
                    task_id=task_id,
                    worker_id=worker_id,
                    attempt=attempt,
                    detail=detail,
                )
                stats.last_words.append(event.last_words())
                self._replace_worker(worker_id, stats, log)
                task_failed(
                    task_id,
                    attempt,
                    lambda: crash_error(task_id, worker_id, attempt, detail),
                )
            else:
                self._replace_worker(worker_id, stats, log)

    def _watchdog(self, busy, policy, stats, log, task_failed) -> None:
        if policy.task_timeout is None:
            return
        now = time.perf_counter()
        for worker_id in list(busy):
            task_id, attempt, started = busy[worker_id][:3]
            if now - started <= policy.task_timeout:
                continue
            entry = busy.pop(worker_id)
            stats.timeouts += 1
            detail = f"exceeded {policy.task_timeout:.3f}s"
            self._finish_dispatch(entry, status="error", error=detail)
            event = log.record(
                "timeout",
                task_id=task_id,
                worker_id=worker_id,
                attempt=attempt,
                detail=detail,
            )
            stats.last_words.append(event.last_words())
            worker = self._workers[worker_id]
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            # Killed after a possible push: reclaim by name.
            self._reclaim_segment(entry[4])
            self._replace_worker(worker_id, stats, log)
            task_failed(
                task_id,
                attempt,
                lambda: timeout_error(task_id, worker_id, attempt),
            )

    def _reclaim_segment(self, name: Optional[str]) -> None:
        """Unlink one pre-allocated result segment and forget it; a
        no-op when the worker never got as far as creating it."""
        if not name:
            return
        self._pending_segments.discard(name)
        try:
            discard_segment(name)
        except Exception:  # pragma: no cover - best effort
            pass

    def _replace_worker(self, worker_id: int, stats, log) -> None:
        """Respawn a dead worker within budget; drop it otherwise."""
        if self._respawns_left > 0:
            self._respawns_left -= 1
            stats.respawns += 1
            log.record("respawn", worker_id=worker_id)
            self._spawn_worker(worker_id)
        else:
            log.record("worker_lost", worker_id=worker_id)
            worker = self._workers.pop(worker_id)
            try:
                worker.task_queue.close()
            except Exception:  # pragma: no cover
                pass

    def _degrade(self, tasks, pending, outcomes, stats, log) -> None:
        """Pool lost: finish the remaining tasks in-process, correctly."""
        stats.degraded = True
        log.record(
            "degraded",
            detail=f"{len(pending)} tasks completed in-process",
        )
        for task_id in sorted(pending):
            outcomes[task_id] = self._run_local(tasks[task_id])
        pending.clear()
