"""Worker fault model: injection, detection policy, and the event log.

Failure handling in the executor is deliberately split three ways:

* :class:`FaultPlan` — a *deterministic* injection spec shipped to the
  workers.  Faults key on ``(task_id, attempt)``, so "crash the first
  attempt of task 3" reproduces identically across schedulers, worker
  counts, and reruns — which is what lets the determinism suite assert
  bit-identical results *through* a crash.
* :class:`FaultPolicy` — the parent's tolerance budget: how many times
  a task may be rescheduled, how long a task may run before the worker
  is presumed hung, how many worker respawns are allowed before the
  executor degrades to in-process execution, and whether the first
  failure should abort the run (``fail_fast``).
* :class:`FaultLog` — an append-only record of every crash, timeout,
  task error, retry, and respawn, surfaced through
  :class:`~repro.exec.executor.ExecStats`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import (
    ExecutorError,
    TraversalError,
    WorkerCrashError,
    WorkerTimeoutError,
)

#: Exit code used by injected crashes, so tests can tell a planned
#: os._exit from an organic segfault.
CRASH_EXIT_CODE = 43


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection, evaluated inside the worker.

    Each mapping sends ``task_id -> number of leading attempts to
    fault``: ``crash={3: 1}`` kills the worker on task 3's first
    attempt and lets the retry through; ``crash={3: 99}`` keeps killing
    until the retry budget is spent.
    """

    #: Attempts to terminate the worker process abruptly (os._exit).
    crash: Mapping[int, int] = field(default_factory=dict)
    #: Attempts to raise a TraversalError inside the task.
    error: Mapping[int, int] = field(default_factory=dict)
    #: Attempts to hang (sleep) so the parent's task timeout fires.
    hang: Mapping[int, int] = field(default_factory=dict)
    #: Attempts to terminate the worker *after* it has pushed its
    #: result segment but before the reply is enqueued — the window
    #: where a crash would orphan shared memory the parent has no spec
    #: for (the teardown-reclamation regression).
    crash_after_result: Mapping[int, int] = field(default_factory=dict)
    #: How long a hung attempt sleeps; keep above the task timeout.
    hang_seconds: float = 30.0

    def apply(self, task_id: int, attempt: int) -> None:
        """Run in the worker immediately before the task executes."""
        if attempt < self.crash.get(task_id, 0):
            os._exit(CRASH_EXIT_CODE)
        if attempt < self.hang.get(task_id, 0):
            time.sleep(self.hang_seconds)
        if attempt < self.error.get(task_id, 0):
            raise TraversalError(
                f"injected fault: task {task_id} attempt {attempt}"
            )

    def apply_after_result(self, task_id: int, attempt: int) -> None:
        """Run in the worker between result publication and the reply."""
        if attempt < self.crash_after_result.get(task_id, 0):
            os._exit(CRASH_EXIT_CODE)

    @property
    def empty(self) -> bool:
        return not (
            self.crash or self.error or self.hang or self.crash_after_result
        )


@dataclass(frozen=True)
class FaultPolicy:
    """The parent's failure budget."""

    #: Reschedules allowed per task beyond the first attempt.
    max_retries: int = 2
    #: Wall seconds a task may run before its worker is presumed hung
    #: and killed (``None`` disables the watchdog).
    task_timeout: Optional[float] = None
    #: Worker respawns allowed across the run before dead workers are
    #: abandoned (and the run degrades to in-process if none are left).
    respawn_limit: int = 4
    #: Abort the whole run on the first task failure instead of
    #: retrying (the CLI's ``--fail-fast``).
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ExecutorError("max_retries must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExecutorError("task_timeout must be positive when given")
        if self.respawn_limit < 0:
            raise ExecutorError("respawn_limit must be non-negative")

    def exhausted(self, attempts: int) -> bool:
        """True when ``attempts`` executions used up the retry budget."""
        return attempts > self.max_retries


@dataclass(frozen=True)
class FaultEvent:
    """One observed failure or recovery action."""

    #: ``"crash"``, ``"timeout"``, ``"task_error"``, ``"retry"``,
    #: ``"respawn"``, ``"worker_lost"``, or ``"degraded"``.
    kind: str
    task_id: Optional[int] = None
    worker_id: Optional[int] = None
    attempt: Optional[int] = None
    detail: str = ""
    #: The failed attempt's last words: the worker-side formatted
    #: traceback for task errors (empty for crashes — an ``os._exit``
    #: or segfault leaves none).
    traceback: str = ""

    def last_words(self) -> dict:
        """Diagnostic payload surfaced through ``ExecStats.last_words``."""
        return {
            "kind": self.kind,
            "task_id": self.task_id,
            "worker_id": self.worker_id,
            "attempt": self.attempt,
            "error": self.detail,
            "traceback": self.traceback,
        }


@dataclass
class FaultLog:
    """Append-only fault history for one executor run."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, kind: str, **kwargs) -> FaultEvent:
        event = FaultEvent(kind=kind, **kwargs)
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def crash_error(
    task_id: int, worker_id: int, attempt: int, detail: str = ""
) -> WorkerCrashError:
    message = (
        f"worker {worker_id} died executing task {task_id} "
        f"(attempt {attempt}); retry budget exhausted"
    )
    if detail:
        message += f" [{detail}]"
    return WorkerCrashError(message)


def timeout_error(task_id: int, worker_id: int, attempt: int) -> WorkerTimeoutError:
    return WorkerTimeoutError(
        f"task {task_id} timed out on worker {worker_id} "
        f"(attempt {attempt}); retry budget exhausted"
    )


def task_error(
    task_id: int, worker_id: int, attempt: int, detail: str, traceback: str = ""
) -> ExecutorError:
    """The parent-side error for a task that raised in a worker; carries
    the worker's last words so ``--fail-fast`` failures are debuggable."""
    message = f"task {task_id} failed on worker {worker_id}: {detail}"
    if traceback:
        message += f"\nworker traceback (attempt {attempt}):\n{traceback.rstrip()}"
    return ExecutorError(message)
