"""Small vectorized helpers shared across engines."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    """``out[i] = sum(values[:i])`` with ``out[0] == 0``."""
    out = np.zeros_like(values)
    if values.size > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


def expand_ranges(starts: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Concatenate ``range(starts[i], starts[i] + widths[i])`` for all i.

    The workhorse of vectorized frontier expansion: given the CSR offsets
    and degrees of the frontier vertices, it yields the flat edge-slot
    indices of every (frontier, neighbor) pair in queue order.
    """
    total = int(widths.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    offsets = np.repeat(starts - exclusive_cumsum(widths), widths)
    return offsets + np.arange(total, dtype=VERTEX_DTYPE)


def gather_neighbors(graph: CSRGraph, frontier: np.ndarray):
    """All out-neighbors of the frontier, with their source vertices.

    Returns
    -------
    (sources, neighbors):
        Parallel arrays with one entry per (frontier vertex, out-edge)
        pair, in frontier-queue order.
    """
    frontier = np.asarray(frontier, dtype=VERTEX_DTYPE)
    starts = graph.row_offsets[frontier]
    widths = graph.row_offsets[frontier + 1] - starts
    slots = expand_ranges(starts, widths)
    sources = np.repeat(frontier, widths)
    return sources, graph.col_indices[slots]
