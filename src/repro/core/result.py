"""Result objects returned by every concurrent-BFS engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraversalError
from repro.gpusim.counters import ProfilerCounters


@dataclass
class GroupStats:
    """Per-group execution statistics (one joint kernel)."""

    #: Source vertices in this group.
    sources: List[int]
    #: Simulated seconds for the group's kernel.
    seconds: float
    #: Sharing degree (average instances sharing each joint frontier).
    sharing_degree: float
    #: Sharing ratio = sharing degree / group size, in [0, 1].
    sharing_ratio: float
    #: Per-level joint frontier queue sizes.
    jfq_sizes: List[int] = field(default_factory=list)
    #: Per-level sharing degree (figure 6's y-axis).
    per_level_sharing: List[float] = field(default_factory=list)
    #: Per-level ``(sum_j |FQ_j|, |JFQ|)`` restricted to top-down
    #: instances (figure 9's top-down series).
    td_sharing: List[tuple] = field(default_factory=list)
    #: Per-level ``(sum_j |FQ_j|, |JFQ|)`` restricted to bottom-up
    #: instances (figure 9's bottom-up series).
    bu_sharing: List[tuple] = field(default_factory=list)
    #: Per-instance bottom-up inspection counts (figure 11's data).
    bottom_up_inspections: List[int] = field(default_factory=list)
    #: Decision log of the traversal (``repro.plan.RunPlan``); excluded
    #: from equality so engine stats still compare clean against
    #: reference stats built without a planner.
    plan: Optional[object] = field(default=None, compare=False, repr=False)


@dataclass
class ConcurrentResult:
    """Outcome of a concurrent multi-source traversal.

    ``depths`` is an ``(i, |V|)`` int32 matrix (row order matches
    ``sources``) or ``None`` when the caller asked not to store depths
    (APSP-scale benchmark runs).
    """

    engine: str
    sources: List[int]
    seconds: float
    counters: ProfilerCounters
    num_vertices: int
    depths: Optional[np.ndarray] = None
    groups: List[GroupStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: Dict[int, int] = {s: i for i, s in enumerate(self.sources)}

    # ------------------------------------------------------------------
    # Depth queries
    # ------------------------------------------------------------------
    def depth(self, source: int, vertex: int) -> int:
        """BFS depth of ``vertex`` from ``source``; -1 when unreachable."""
        row = self.depth_row(source)
        if not 0 <= vertex < self.num_vertices:
            raise TraversalError(f"vertex {vertex} out of range")
        return int(row[vertex])

    def depth_row(self, source: int) -> np.ndarray:
        """Depth array from one source."""
        if self.depths is None:
            raise TraversalError(
                "depths were not stored for this run (store_depths=False)"
            )
        try:
            return self.depths[self._index[source]]
        except KeyError:
            raise TraversalError(f"{source} was not a traversal source") from None

    def reached(self, source: int) -> int:
        """Vertices reachable from ``source`` (including itself)."""
        return int(np.count_nonzero(self.depth_row(source) >= 0))

    # ------------------------------------------------------------------
    # Performance metrics
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return len(self.sources)

    @property
    def edges_traversed(self) -> int:
        return self.counters.edges_traversed

    @property
    def teps(self) -> float:
        """Traversed edges per second over the simulated runtime."""
        if self.seconds <= 0:
            return 0.0
        return self.edges_traversed / self.seconds

    @property
    def sharing_degree(self) -> float:
        """Instance-weighted mean sharing degree across groups."""
        if not self.groups:
            return 0.0
        weights = [len(g.sources) for g in self.groups]
        total = sum(weights)
        if total == 0:
            return 0.0
        return sum(g.sharing_degree * w for g, w in zip(self.groups, weights)) / total

    @property
    def sharing_ratio(self) -> float:
        """Instance-weighted mean sharing ratio across groups."""
        if not self.groups:
            return 0.0
        weights = [len(g.sources) for g in self.groups]
        total = sum(weights)
        if total == 0:
            return 0.0
        return sum(g.sharing_ratio * w for g, w in zip(self.groups, weights)) / total

    def group_times(self) -> List[float]:
        """Simulated seconds per group (the cluster scheduler's units)."""
        return [g.seconds for g in self.groups]

    @property
    def plans(self) -> List:
        """Recorded per-group decision logs (``repro.plan.RunPlan``)."""
        return [g.plan for g in self.groups]

    def summary(self) -> Dict[str, float]:
        """Compact scalar summary used by the benchmark harness."""
        return {
            "instances": float(self.num_instances),
            "seconds": self.seconds,
            "teps": self.teps,
            "edges_traversed": float(self.edges_traversed),
            "load_transactions": float(self.counters.global_load_transactions),
            "store_transactions": float(self.counters.global_store_transactions),
            "inspections": float(self.counters.inspections),
            "sharing_degree": self.sharing_degree,
        }

    def to_dict(self, include_depths: bool = False) -> Dict:
        """JSON-serializable representation of the run.

        Depths are included only on request (they are O(i * |V|)).
        """
        payload = {
            "engine": self.engine,
            "sources": list(self.sources),
            "seconds": self.seconds,
            "num_vertices": self.num_vertices,
            "summary": self.summary(),
            "groups": [
                {
                    "sources": list(g.sources),
                    "seconds": g.seconds,
                    "sharing_degree": g.sharing_degree,
                    "sharing_ratio": g.sharing_ratio,
                    "jfq_sizes": list(g.jfq_sizes),
                }
                for g in self.groups
            ],
        }
        if include_depths and self.depths is not None:
            payload["depths"] = self.depths.tolist()
        return payload

    def to_json(self, include_depths: bool = False, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` to a JSON string."""
        import json

        return json.dumps(self.to_dict(include_depths), indent=indent)


def validate_against_reference(
    result: ConcurrentResult, reference_depths: np.ndarray
) -> None:
    """Raise :class:`TraversalError` when depths differ from the oracle."""
    if result.depths is None:
        raise TraversalError("cannot validate a run without stored depths")
    if result.depths.shape != reference_depths.shape:
        raise TraversalError(
            f"depth shape mismatch: {result.depths.shape} vs "
            f"{reference_depths.shape}"
        )
    if not np.array_equal(result.depths, reference_depths):
        bad = np.argwhere(result.depths != reference_depths)
        row, col = bad[0]
        raise TraversalError(
            f"engine {result.engine!r} disagrees with reference at "
            f"source index {row}, vertex {col}: "
            f"{result.depths[row, col]} != {reference_depths[row, col]} "
            f"({bad.shape[0]} mismatches total)"
        )
