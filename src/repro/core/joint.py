"""Joint traversal (section 4): one kernel, shared frontiers, JSA + JFQ.

All instances of a group execute inside a single simulated kernel:

* the **Joint Frontier Queue** holds every vertex that is a frontier
  for *any* instance exactly once (generated with a warp scan + vote);
* the **Joint Status Array** stores each vertex's N per-instance status
  bytes contiguously, so N contiguous threads inspecting a vertex
  coalesce into one memory transaction;
* each frontier's adjacency list is loaded from global memory **once**
  into the shared-memory cache and consumed by every instance.

Each instance still inspects independently ("shared frontiers do not
reduce the overall workload") — the savings are in memory traffic, and
the counters below reflect exactly that.

Per-level direction comes from the planner (:mod:`repro.plan`): each
executed level consumes one :class:`~repro.plan.types.LevelDecision`
and the sequence is recorded as a :class:`~repro.plan.types.RunPlan`
on the returned stats; ``plan=`` replays a recording bit-identically.
The JSA engine has no bitwise kernel variants, so a decision's
``kernel``/``vector_width``/``snapshot`` fields are carried in the
record but do not change execution here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.device import Device
from repro.core.result import GroupStats
from repro.core.sharing import SharingObserver
from repro.kernels import bucketed_hit_scan, instance_frontier_stats
from repro.plan.policy import (
    DirectionPolicy,
    HeuristicPolicy,
    Policy,
    RecordedPolicy,
)
from repro.plan.types import Direction, LevelDecision, LevelStats, RunPlan
from repro.util import gather_neighbors

#: One status byte per (vertex, instance) pair, as in figure 4.
JSA_STATUS_BYTES = 1
INSTRUCTIONS_PER_INSPECTION = 10
INSTRUCTIONS_PER_VERTEX = 6

UNVISITED = -1


class JointTraversal:
    """Joint (JSA-based, non-bitwise) traversal of one group."""

    name = "joint"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        if planner is None:
            planner = HeuristicPolicy.from_direction_policy(self.policy)
        self.planner = planner
        self._reverse = graph.reverse() if planner.allow_bottom_up else None

    def run_group(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ):
        """Traverse all sources jointly.

        Returns
        -------
        (depths, record, stats):
            ``depths`` is an ``(N, |V|)`` int32 matrix; ``record`` the
            per-level cost records; ``stats`` a :class:`GroupStats`.
        """
        sources = [int(s) for s in sources]
        n = self.graph.num_vertices
        group_size = len(sources)
        if group_size == 0:
            raise TraversalError("group must contain at least one source")
        for s in sources:
            if not 0 <= s < n:
                raise TraversalError(f"source {s} out of range [0, {n})")

        if plan is not None:
            planner: Policy = RecordedPolicy(plan)
        else:
            planner = self.planner
        total_edges = self.graph.num_edges
        session = planner.session(group_size, n, total_edges)
        wants_stats = session.wants_stats
        run_plan = RunPlan(
            policy=planner.name, engine=self.name, group_size=group_size
        )

        depths = np.full((group_size, n), UNVISITED, dtype=np.int32)
        depths[np.arange(group_size), sources] = 0
        active = np.ones(group_size, dtype=bool)
        out_degrees = self.graph.out_degrees()
        visited_count = np.ones(group_size, dtype=np.int64)

        record = RunRecord()
        observer = SharingObserver(group_size)
        sharing_log = {"td": [], "bu": []}
        bu_inspections = np.zeros(group_size, dtype=np.int64)

        decision: Optional[LevelDecision] = None
        stats_prev: Optional[LevelStats] = None
        level = 0
        while active.any():
            if max_depth is not None and level >= max_depth:
                break
            if level > n + 1:
                raise TraversalError("traversal failed to converge")
            if decision is None:
                decision = session.initial()
            else:
                decision = session.next(stats_prev)
            if decision.num_instances != group_size:
                raise TraversalError(
                    f"planner decided {decision.num_instances} instances "
                    f"for a group of {group_size}"
                )
            run_plan.append(decision)
            directions = decision.directions
            td_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.TOP_DOWN
            ]
            bu_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.BOTTOM_UP
            ]
            if bu_instances and self._reverse is None:
                self._reverse = self.graph.reverse()
            progressed = self._level(
                depths,
                td_instances,
                bu_instances,
                level,
                record,
                observer,
                sharing_log,
                bu_inspections,
                kernel=decision.kernel,
            )

            # Per-instance bookkeeping: completion and the statistics the
            # policy feeds on.  All instances' statistics come from one
            # vectorized pass over the depth matrix instead of
            # group_size dense scans.
            counts, frontier_edges, unexplored = instance_frontier_stats(
                depths, level, out_degrees, total_edges
            )
            visited_count += counts
            for j in range(group_size):
                if not active[j]:
                    continue
                if directions[j] is Direction.TOP_DOWN:
                    if counts[j] == 0:
                        active[j] = False
                else:
                    if not progressed[j]:
                        active[j] = False
            if wants_stats:
                stats_prev = LevelStats(
                    level=level,
                    num_vertices=n,
                    total_edges=total_edges,
                    frontier_vertices=tuple(int(c) for c in counts),
                    frontier_edges=tuple(int(e) for e in frontier_edges),
                    unexplored_edges=tuple(int(u) for u in unexplored),
                    visited_vertices=tuple(int(v) for v in visited_count),
                    active=tuple(bool(a) for a in active),
                )
            level += 1

        record.counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        stats = GroupStats(
            sources=sources,
            seconds=seconds,
            sharing_degree=observer.degree(),
            sharing_ratio=observer.ratio(),
            jfq_sizes=list(observer.jfq_sizes),
            per_level_sharing=observer.per_level_degree(),
            td_sharing=sharing_log["td"],
            bu_sharing=sharing_log["bu"],
            bottom_up_inspections=bu_inspections.tolist(),
            plan=run_plan,
        )
        return depths, record, stats

    # ------------------------------------------------------------------
    # One synchronized level of the joint kernel
    # ------------------------------------------------------------------
    def _level(
        self,
        depths: np.ndarray,
        td_instances: List[int],
        bu_instances: List[int],
        level: int,
        record: RunRecord,
        observer: SharingObserver,
        sharing_log: dict,
        bu_inspections: np.ndarray,
        kernel: str = "auto",
    ) -> np.ndarray:
        mem = self.device.memory
        counters = record.counters
        group_size = depths.shape[0]
        num_vertices = depths.shape[1]
        progressed = np.zeros(group_size, dtype=bool)

        # Joint frontier queue for this level (each shared frontier once).
        td_mask = (
            np.any(depths[td_instances] == level, axis=0)
            if td_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        bu_mask = (
            np.any(depths[bu_instances] == UNVISITED, axis=0)
            if bu_instances
            else np.zeros(num_vertices, dtype=bool)
        )
        jfq_size = int(np.count_nonzero(td_mask | bu_mask))
        fq_td = sum(
            int(np.count_nonzero(depths[j] == level)) for j in td_instances
        )
        fq_bu = sum(
            int(np.count_nonzero(depths[j] == UNVISITED)) for j in bu_instances
        )
        observer.record_level(fq_td + fq_bu, jfq_size)
        sharing_log["td"].append((fq_td, int(np.count_nonzero(td_mask))))
        sharing_log["bu"].append((fq_bu, int(np.count_nonzero(bu_mask))))
        if jfq_size == 0:
            record.append(LevelRecord(depth=level, direction="td"))
            counters.levels += 1
            return progressed

        loads = 0
        stores = 0
        load_requests = 0
        store_requests = 0
        instructions = 0
        inspections_level = 0

        # --- Top-down pass -------------------------------------------
        td_frontier = np.flatnonzero(td_mask).astype(VERTEX_DTYPE)
        discovered_any = np.zeros(num_vertices, dtype=bool)
        if td_frontier.size:
            degrees = self.graph.out_degrees()[td_frontier]
            pair_count = int(degrees.sum())
            # Adjacency of each joint frontier is loaded once and cached
            # in shared memory for all instances.
            loads += mem.adjacency_transactions(degrees)
            loads += mem.stream_transactions(td_frontier.size * 8)
            counters.shared_memory_accesses += pair_count * max(
                len(td_instances) - 1, 0
            )
            for j in td_instances:
                frontier_j = np.flatnonzero(depths[j] == level).astype(VERTEX_DTYPE)
                if frontier_j.size == 0:
                    continue
                _, neighbors = gather_neighbors(self.graph, frontier_j)
                inspections_level += int(neighbors.size)
                fresh = neighbors[depths[j, neighbors] == UNVISITED]
                if fresh.size:
                    depths[j, fresh] = level + 1
                    discovered_any[fresh] = True
                    progressed[j] = True
            # N contiguous threads inspect each (frontier, neighbor)
            # pair's N contiguous status bytes: one coalesced transaction
            # per pair instead of one per instance.
            loads += mem.status_group_transactions(
                pair_count, group_size * JSA_STATUS_BYTES
            )
            load_requests += pair_count
            td_discovered = int(np.count_nonzero(discovered_any))
            stores += mem.status_group_transactions(
                td_discovered, group_size * JSA_STATUS_BYTES
            )
            store_requests += td_discovered

        # --- Bottom-up pass ------------------------------------------
        if bu_instances:
            probes, early, bu_discovered, vertex_rounds = self._bottom_up_pass(
                depths, bu_instances, level, bu_inspections, kernel=kernel
            )
            progressed[bu_instances] |= bu_discovered > 0
            counters.early_terminations += early
            counters.bottom_up_inspections += probes
            inspections_level += probes
            bu_frontier = np.flatnonzero(bu_mask).astype(VERTEX_DTYPE)
            loads += mem.stream_transactions(bu_frontier.size * 8)
            loads += mem.adjacency_transactions(
                self._reverse.out_degrees()[bu_frontier]
            )
            # Each (vertex, neighbor-position) probe round touches the
            # probed parent's N contiguous statuses once for all
            # instances still scanning (coalesced).
            loads += mem.status_group_transactions(
                vertex_rounds, group_size * JSA_STATUS_BYTES
            )
            load_requests += vertex_rounds
            found = int(bu_discovered.sum())
            stores += mem.status_group_transactions(
                found, group_size * JSA_STATUS_BYTES
            )
            store_requests += found

        # --- Joint frontier queue generation --------------------------
        # One warp scans each vertex's N statuses and votes (__any); one
        # thread enqueues, __ballot records the sharing bitmap.
        loads += mem.stream_transactions(num_vertices * group_size * JSA_STATUS_BYTES)
        load_requests += self.device.warps_for(num_vertices)
        counters.warp_votes += num_vertices
        stores += mem.stream_transactions(jfq_size * 8)
        store_requests += self.device.warps_for(jfq_size)
        counters.frontier_enqueues += jfq_size

        instructions += (
            inspections_level * INSTRUCTIONS_PER_INSPECTION
            + jfq_size * INSTRUCTIONS_PER_VERTEX
        )
        counters.inspections += inspections_level
        counters.edges_traversed += inspections_level
        counters.levels += 1
        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += load_requests
        counters.global_store_requests += store_requests
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="bu" if bu_instances and not td_instances else "td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=jfq_size * group_size,
                frontier_size=jfq_size,
            )
        )
        return progressed

    def _bottom_up_pass(
        self,
        depths: np.ndarray,
        bu_instances: List[int],
        level: int,
        bu_inspections: np.ndarray,
        kernel: str = "auto",
    ):
        """Per-instance bottom-up probing with early termination.

        Returns ``(total_probes, early_terminations, discovered_per_instance)``.
        """
        assert self._reverse is not None
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices
        bu_rows = np.asarray(bu_instances, dtype=np.int64)

        pair_row, pair_vertex = np.nonzero(depths[bu_rows] == UNVISITED)
        if pair_row.size == 0:
            return 0, 0, np.zeros(len(bu_instances), dtype=np.int64), 0
        pair_vertex = pair_vertex.astype(VERTEX_DTYPE)
        starts = offsets[pair_vertex]
        ends = offsets[pair_vertex + 1]

        # Each (instance, vertex) pair scans its vertex's in-neighbors
        # until the instance sees a visited parent — a per-pair-local
        # stop condition, so the synchronized round loop collapses into
        # degree-bucketed vector passes with identical probe counts.
        def parent_hit(positions: np.ndarray, nb: np.ndarray) -> np.ndarray:
            inst = bu_rows[pair_row[positions]]
            parent_depth = depths[inst, nb]
            return (parent_depth >= 0) & (parent_depth <= level)

        probes, found = bucketed_hit_scan(
            indices,
            starts,
            ends - starts,
            parent_hit,
            depth_table=depths,
            inst=bu_rows[pair_row],
            level=level,
            kernel=kernel,
        )

        discovered_idx = np.flatnonzero(found)
        depths[
            bu_rows[pair_row[discovered_idx]], pair_vertex[discovered_idx]
        ] = level + 1
        early = int(np.count_nonzero(found & (probes < (ends - starts))))
        bu_inspections[bu_rows] += np.bincount(
            pair_row, weights=probes.astype(np.float64),
            minlength=len(bu_instances),
        ).astype(np.int64)
        discovered_per_instance = np.bincount(
            pair_row[discovered_idx], minlength=len(bu_instances)
        )
        # A vertex is probed in synchronized round r while any of its
        # pairs is still scanning (pairs are alive for rounds
        # 0..probes-1), so its round count is the max over its pairs.
        order = np.argsort(pair_vertex, kind="stable")
        pv_sorted = pair_vertex[order]
        boundary = np.empty(pv_sorted.size, dtype=bool)
        boundary[0] = True
        np.not_equal(pv_sorted[1:], pv_sorted[:-1], out=boundary[1:])
        vertex_rounds = int(
            np.maximum.reduceat(probes[order], np.flatnonzero(boundary)).sum()
        )
        return int(probes.sum()), early, discovered_per_instance, vertex_rounds
