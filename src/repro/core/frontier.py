"""Joint frontier queue generation with warp votes and ballots.

Section 4: "iBFS assigns one warp to scan the status of each vertex...
iBFS uses a CUDA vote instruction, i.e., __any(), to communicate among
different threads in the same warp and schedules one thread to enqueue
the frontier.  Furthermore, iBFS uses another CUDA feature
__ballot(parameter) to generate a separate variable to indicate which
BFS instances share this frontier."

This module materializes exactly that: given the per-vertex frontier
bits of a level, it produces the joint frontier queue together with
each frontier's *ballot* (the bitmap of instances sharing it), and the
sharing histogram ``s_j`` — how many frontiers are shared by exactly
``j`` instances — which is the quantity Theorem 1's proof manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import VERTEX_DTYPE
from repro.gpusim.warp import popcount


@dataclass
class FrontierBallots:
    """A generated joint frontier queue with per-frontier ballots."""

    #: Vertex ids in the joint frontier queue (each shared vertex once).
    queue: np.ndarray
    #: ``(len(queue), lanes)`` uint64 ballots: bit j of row i set iff
    #: instance j considers ``queue[i]`` a frontier.
    ballots: np.ndarray
    #: Group size (for ratio computations).
    group_size: int

    def __post_init__(self) -> None:
        if self.queue.shape[0] != self.ballots.shape[0]:
            raise TraversalError("queue and ballots must align")

    @property
    def size(self) -> int:
        return int(self.queue.size)

    def share_counts(self) -> np.ndarray:
        """Instances sharing each frontier (popcount of each ballot)."""
        if self.ballots.size == 0:
            return np.zeros(0, dtype=np.int64)
        return popcount(self.ballots).sum(axis=1).astype(np.int64) if (
            self.ballots.ndim > 1
        ) else popcount(self.ballots)

    def sharing_histogram(self) -> Dict[int, int]:
        """``{j: s_j}`` — frontiers shared by exactly j instances.

        These are the ``s_j(k)`` of the Theorem 1 proof; the sharing
        degree of the level equals ``sum(j * s_j) / sum(s_j)``.
        """
        counts = self.share_counts()
        histogram: Dict[int, int] = {}
        if counts.size == 0:
            return histogram
        values, freq = np.unique(counts, return_counts=True)
        for j, s in zip(values.tolist(), freq.tolist()):
            histogram[int(j)] = int(s)
        return histogram

    def sharing_degree(self) -> float:
        """``sum_j j * s_j / |JFQ|`` — the level's SD from ballots."""
        counts = self.share_counts()
        if counts.size == 0:
            return 0.0
        return float(counts.sum() / counts.size)


def generate_jfq(frontier_bits: np.ndarray, group_size: int) -> FrontierBallots:
    """Build the JFQ from per-vertex frontier bit words.

    Parameters
    ----------
    frontier_bits:
        ``(num_vertices, lanes)`` uint64; bit j of vertex v set iff
        instance j considers v a frontier this level.  For top-down
        that is ``BSA_k XOR BSA_{k-1}`` (just-visited); for bottom-up
        ``NOT BSA_k`` masked to live instances.
    group_size:
        Number of instances (bounds the meaningful bits).

    The warp-vote semantics: a vertex enters the queue iff ``__any`` of
    its bits is set; its ballot is the word itself.
    """
    frontier_bits = np.ascontiguousarray(frontier_bits, dtype=np.uint64)
    if frontier_bits.ndim == 1:
        frontier_bits = frontier_bits[:, np.newaxis]
    if group_size <= 0:
        raise TraversalError("group_size must be positive")
    any_set = np.any(frontier_bits != 0, axis=1)
    queue = np.flatnonzero(any_set).astype(VERTEX_DTYPE)
    return FrontierBallots(
        queue=queue,
        ballots=frontier_bits[queue],
        group_size=group_size,
    )


def frontier_bits_top_down(
    bsa_prev: np.ndarray, bsa_cur: np.ndarray, lane_mask: np.ndarray
) -> np.ndarray:
    """Algorithm 2's top-down identification: changed bits (XOR)."""
    return (bsa_cur ^ bsa_prev) & lane_mask


def frontier_bits_bottom_up(
    bsa_cur: np.ndarray, lane_mask: np.ndarray
) -> np.ndarray:
    """Algorithm 2's bottom-up identification: unset bits (NOT)."""
    return (~bsa_cur) & lane_mask
