"""Empirical verification of the paper's sharing theory (section 5.1).

The paper proves two results that justify GroupBy:

* **Lemma 1** — a group's sharing degree equals the expected speedup of
  its joint execution over sequential execution, where time is counted
  in inspections: ``SD_A = N * |E'| / T_A`` with ``T_A = sum_k
  sum_{v in JFQ(k)} outdegree(v)``.
* **Theorem 1 / Lemma 2** — between two groups of equal size, the one
  with the higher sharing ratio at an early level keeps the higher
  *expected* ratio later, so grouping decisions can be made from the
  first levels.

These are statements about measurable quantities, so this module
measures them: :func:`verify_lemma1` recomputes both sides of Lemma 1
from a traversal and reports the relative gap, and
:func:`early_sharing_predicts_speedup` tests Lemma 2's prediction over
a set of candidate groups.  The test suite asserts both on real graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GroupingError
from repro.graph.csr import CSRGraph
from repro.plan.policy import DirectionPolicy
from repro.core.joint import JointTraversal


@dataclass
class Lemma1Report:
    """Both sides of Lemma 1 for one group."""

    sharing_degree: float
    inspection_speedup: float

    @property
    def relative_gap(self) -> float:
        """``|SD - speedup| / speedup`` (0 when the lemma holds exactly)."""
        if self.inspection_speedup == 0:
            return 0.0 if self.sharing_degree == 0 else float("inf")
        return abs(self.sharing_degree - self.inspection_speedup) / (
            self.inspection_speedup
        )


def verify_lemma1(
    graph: CSRGraph,
    group: Sequence[int],
    policy: Optional[DirectionPolicy] = None,
) -> Lemma1Report:
    """Measure both sides of Lemma 1 for one group.

    The lemma is exact when every vertex becomes a frontier exactly once
    per instance (a fully reachable graph traversed top-down); our
    measured quantities use the engine's actual per-level queues, so
    direction switching and unreachable vertices introduce only small
    deviations, which the report quantifies.
    """
    if len(group) == 0:
        raise GroupingError("group must not be empty")
    # Top-down-only traversal matches the lemma's setting (every level's
    # JFQ is expanded and each frontier's full out-edge list inspected).
    policy = policy or DirectionPolicy(allow_bottom_up=False)
    engine = JointTraversal(graph, policy=policy)
    depths, record, stats = engine.run_group(group)

    out_degrees = graph.out_degrees()
    # T_A: joint time = sum over levels of outdegrees of JFQ members.
    joint_inspections = 0
    num_levels = len(stats.jfq_sizes)
    for level in range(num_levels):
        frontier = np.any(depths == level, axis=0)
        joint_inspections += int(out_degrees[frontier].sum())
    # Sequential time: each instance inspects its own frontiers' edges.
    sequential_inspections = 0
    for row in depths:
        reached = row >= 0
        sequential_inspections += int(out_degrees[reached].sum())
    speedup = (
        sequential_inspections / joint_inspections
        if joint_inspections
        else 0.0
    )
    return Lemma1Report(
        sharing_degree=stats.sharing_degree,
        inspection_speedup=speedup,
    )


def early_sharing_rank(
    graph: CSRGraph,
    groups: Sequence[Sequence[int]],
    levels: int = 3,
) -> List[Tuple[float, float]]:
    """``(early_sd, overall_sd)`` per group — Theorem 1's two variables.

    ``early_sd`` averages the sharing degree over the first ``levels``
    levels (skipping level 0, where sources never share); ``overall_sd``
    is the group's full-run sharing degree, which by Lemma 1 predicts
    its joint speedup.
    """
    engine = JointTraversal(graph)
    pairs = []
    for group in groups:
        _, _, stats = engine.run_group(group)
        early = stats.per_level_sharing[1 : 1 + levels]
        early_sd = float(np.mean(early)) if early else 0.0
        pairs.append((early_sd, stats.sharing_degree))
    return pairs


def early_sharing_predicts_speedup(
    graph: CSRGraph,
    groups: Sequence[Sequence[int]],
    levels: int = 3,
) -> float:
    """Spearman-style rank agreement between early SD and overall SD.

    Returns a correlation in [-1, 1]; Theorem 1 predicts it is strongly
    positive over groups of the same size.
    """
    pairs = early_sharing_rank(graph, groups, levels=levels)
    if len(pairs) < 2:
        raise GroupingError("need at least two groups to correlate")
    early = np.asarray([p[0] for p in pairs])
    overall = np.asarray([p[1] for p in pairs])
    rank_early = np.argsort(np.argsort(early)).astype(np.float64)
    rank_overall = np.argsort(np.argsort(overall)).astype(np.float64)
    if rank_early.std() == 0 or rank_overall.std() == 0:
        return 1.0 if np.allclose(rank_early, rank_overall) else 0.0
    return float(np.corrcoef(rank_early, rank_overall)[0, 1])
