"""Multi-GPU concurrent BFS (section 8.3's execution model).

"As long as different GPUs work on independent BFSes, there is no need
for inter-GPU communication.  Therefore, the key challenge here is
achieving workload balance on GPUs."  :class:`DistributedIBFS` runs the
single-device iBFS engine to obtain per-group simulated times, then
schedules the groups across a simulated cluster and reports the
makespan ("the longest time consumption of all the GPUs is reported"),
per-device utilization, and the aggregate traversal rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.obs import tracing as obs_tracing
from repro.gpusim.cluster import Cluster, Scheduler, schedule_lpt
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.device import Device
from repro.core.engine import IBFSConfig
from repro.core.result import ConcurrentResult
from repro.runtime import SubstrateSpec, make_substrate


@dataclass
class DistributedResult:
    """Outcome of a distributed concurrent-BFS run."""

    #: The underlying single-device result (depths, counters, groups).
    local: ConcurrentResult
    num_devices: int
    makespan: float
    device_times: np.ndarray
    assignment: np.ndarray
    #: ``"sim"`` when groups executed serially in this process,
    #: ``"process"`` when they ran on the real multi-process backend.
    backend: str = "sim"
    #: Real wall-clock seconds of group execution (``process`` backend).
    wall_seconds: Optional[float] = None
    #: Executor observability (``process`` backend):
    #: :class:`repro.exec.executor.ExecStats`.
    exec_stats: Optional[object] = None

    @property
    def teps(self) -> float:
        """Aggregate traversal rate over the cluster makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.local.counters.edges_traversed / self.makespan

    @property
    def speedup(self) -> float:
        """Makespan speedup over single-device serial execution."""
        serial = float(self.device_times.sum())
        if self.makespan <= 0:
            return 0.0
        return serial / self.makespan

    @property
    def efficiency(self) -> float:
        """Speedup divided by device count, in (0, 1]."""
        if self.num_devices == 0:
            return 0.0
        return self.speedup / self.num_devices

    @property
    def imbalance(self) -> float:
        """Makespan over mean device time (1.0 = perfectly balanced)."""
        mean = float(self.device_times.mean()) if self.device_times.size else 0.0
        if mean == 0:
            return 1.0
        return self.makespan / mean

    def groups_on_device(self, device_id: int) -> List[int]:
        """Indices of the groups assigned to one device."""
        if not 0 <= device_id < self.num_devices:
            raise SimulationError(
                f"device {device_id} out of range [0, {self.num_devices})"
            )
        return np.flatnonzero(self.assignment == device_id).tolist()


class DistributedIBFS:
    """iBFS across a fleet of identical simulated GPUs.

    ``backend`` selects how groups actually execute while the cluster
    model prices them:

    * ``"sim"`` (default) — groups run serially in this process and
      only the *schedule* is simulated (the original behavior);
    * ``"process"`` — groups run genuinely concurrently on the
      :class:`repro.exec.executor.GroupExecutor` process pool (one
      worker per simulated device unless ``num_workers`` overrides it),
      with bit-identical results; the simulated makespan is computed
      from the same per-group simulated times, and the real wall clock
      plus executor stats land on the result.
    * ``"partitioned"`` — the graph itself is split across the devices
      (:class:`repro.dist.engine.PartitionedEngine`, one partition per
      device), so graphs too big for any single device still run; every
      group uses the whole cluster, the makespan is the sum of the
      comm-model group times, ``assignment`` is the ``-1`` sentinel
      (groups are not placed on single devices), and the per-level
      exchange stats land in ``exec_stats``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_devices: int,
        config: Optional[IBFSConfig] = None,
        device_config: Optional[DeviceConfig] = None,
        scheduler: Scheduler = schedule_lpt,
        backend: str = "sim",
        num_workers: Optional[int] = None,
        exec_config: Optional[object] = None,
        dist_config: Optional[object] = None,
    ) -> None:
        if num_devices <= 0:
            raise SimulationError("num_devices must be positive")
        if backend not in ("sim", "process", "partitioned"):
            raise SimulationError(
                f"unknown backend {backend!r}; "
                f"expected 'sim', 'process', or 'partitioned'"
            )
        self.graph = graph
        self.num_devices = num_devices
        self.device_config = device_config or KEPLER_K20
        self.scheduler = scheduler
        self.backend = backend
        # Backends resolve through the substrate registry: ``sim`` is
        # the serial substrate, ``process`` the executor substrate, and
        # ``partitioned`` the partitioned substrate (each device holds
        # one partition, so the whole-graph fits() check does not apply
        # — that is the point of that backend).
        if backend != "partitioned":
            # Every device holds a full graph replica (paper's setup).
            if not Device(self.device_config).fits(graph):
                raise SimulationError(
                    f"graph does not fit in {self.device_config.name} memory"
                )
        if backend == "process" and exec_config is None:
            from repro.exec.executor import ExecConfig

            workers = num_workers if num_workers is not None else num_devices
            exec_config = ExecConfig(num_workers=workers)
        spec = SubstrateSpec(
            kind={
                "sim": "serial",
                "process": "executor",
                "partitioned": "partitioned",
            }[backend],
            partitions=num_devices if backend == "partitioned" else 0,
        )
        self.substrate_spec = spec
        self.substrate = make_substrate(
            spec,
            graph,
            engine_config=config or IBFSConfig(),
            device=Device(self.device_config),
            device_config=self.device_config,
            exec_config=exec_config,
            dist_config=dist_config,
        )

    @property
    def engine(self):
        """The substrate's engine (read-only back-compat view)."""
        return self.substrate.engine

    @property
    def _partitioned(self):
        return self.substrate.partitioned_engine

    @property
    def _executor(self):
        return self.substrate.executor

    def close(self) -> None:
        """Tear down the process/partitioned backends (no-op for ``sim``)."""
        self.substrate.close()

    def __enter__(self) -> "DistributedIBFS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _run_local(
        self,
        sources: Sequence[int],
        max_depth: Optional[int],
        store_depths: bool,
    ):
        """Execute all groups; returns (result, wall, exec_stats)."""
        if self.substrate.supports_partitions:
            local = self.substrate.run(
                sources, max_depth=max_depth, store_depths=store_depths
            )
            stats = self.substrate.last_stats
            return local, stats.wall_seconds, stats
        if self.substrate.supports_executor:
            import time

            start = time.perf_counter()
            local = self.substrate.run(
                sources, max_depth=max_depth, store_depths=store_depths
            )
            wall = time.perf_counter() - start
            return local, wall, self.substrate.last_stats
        local = self.substrate.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )
        return local, None, None

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = False,
    ) -> DistributedResult:
        """Traverse from all sources across the cluster."""
        sources = [int(s) for s in sources]
        with obs_tracing.get_tracer().span(
            "distributed.run",
            backend=self.backend,
            num_devices=self.num_devices,
            num_sources=len(sources),
        ):
            local, wall, exec_stats = self._run_local(
                sources, max_depth, store_depths
            )
            if self._partitioned is not None:
                # Groups execute one after another, each spanning every
                # partition, so the makespan is the sum of group times
                # and no group is placed on a single device.
                return DistributedResult(
                    local=local,
                    num_devices=self.num_devices,
                    makespan=local.seconds,
                    device_times=np.full(
                        self.num_devices, local.seconds, dtype=np.float64
                    ),
                    assignment=np.full(
                        len(local.groups), -1, dtype=np.int64
                    ),
                    backend=self.backend,
                    wall_seconds=wall,
                    exec_stats=exec_stats,
                )
            durations = local.group_times()
            cluster = Cluster(
                self.num_devices, self.device_config, self.scheduler
            )
            outcome = cluster.run(durations)
        return DistributedResult(
            local=local,
            num_devices=self.num_devices,
            makespan=outcome.makespan,
            device_times=outcome.device_times,
            assignment=outcome.assignment,
            backend=self.backend,
            wall_seconds=wall,
            exec_stats=exec_stats,
        )

    def strong_scaling(
        self,
        sources: Sequence[int],
        device_counts: Sequence[int],
    ) -> List[DistributedResult]:
        """One result per device count over the *same* workload.

        Runs the traversal once and re-schedules the measured group
        times, which is exactly what varying the cluster size does.
        """
        if self._partitioned is not None:
            raise SimulationError(
                "strong_scaling re-schedules whole groups across devices; "
                "the partitioned backend spans every device per group — "
                "construct one DistributedIBFS per partition count instead"
            )
        local, wall, exec_stats = self._run_local(sources, None, False)
        durations = local.group_times()
        results = []
        for count in device_counts:
            outcome = Cluster(count, self.device_config, self.scheduler).run(
                durations
            )
            results.append(
                DistributedResult(
                    local=local,
                    num_devices=count,
                    makespan=outcome.makespan,
                    device_times=outcome.device_times,
                    assignment=outcome.assignment,
                    backend=self.backend,
                    wall_seconds=wall,
                    exec_stats=exec_stats,
                )
            )
        return results
