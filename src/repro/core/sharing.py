"""Frontier-sharing theory (section 5.1): sharing degree and ratio.

Definitions from the paper, for a group A of N instances:

* ``SD_A = (sum_k sum_j |FQ_j(k)|) / (sum_k |JFQ_A(k)|)`` — how many
  instances share an average joint frontier;
* sharing ratio = ``SD_A / N`` in [1/N, 1];
* Lemma 1: ``SD_A`` equals the expected speedup of joint over
  sequential execution of the group;
* Theorem 1 / Lemma 2: a group with the higher sharing ratio at an
  early level keeps the higher *expected* ratio later, so grouping can
  be decided from the first levels.

:class:`SharingObserver` accumulates the per-level queue sizes that all
of these formulas need while an engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import GroupingError


def sharing_degree(fq_sizes_per_level: Sequence[int], jfq_sizes: Sequence[int]) -> float:
    """SD from total per-instance queue sizes and joint queue sizes.

    ``fq_sizes_per_level[k]`` must already be summed over instances:
    ``sum_j |FQ_j(k)|``.
    """
    if len(fq_sizes_per_level) != len(jfq_sizes):
        raise GroupingError("per-level size lists must have equal length")
    joint_total = sum(jfq_sizes)
    if joint_total == 0:
        return 0.0
    return sum(fq_sizes_per_level) / joint_total


def sharing_ratio(sd: float, group_size: int) -> float:
    """Sharing ratio = sharing degree normalized by group size."""
    if group_size <= 0:
        raise GroupingError("group size must be positive")
    return sd / group_size


def pairwise_sharing(frontier_a: np.ndarray, frontier_b: np.ndarray) -> float:
    """Shared-frontier percentage between two instances at one level.

    Figure 2's metric: ``|FQ_a ∩ FQ_b| / |FQ_a ∪ FQ_b|`` (Jaccard), as a
    fraction in [0, 1]; 0 when both frontiers are empty.
    """
    a = np.asarray(frontier_a)
    b = np.asarray(frontier_b)
    union = np.union1d(a, b).size
    if union == 0:
        return 0.0
    return np.intersect1d(a, b).size / union


@dataclass
class SharingObserver:
    """Accumulates queue sizes during a joint traversal.

    For each level an engine reports the summed per-instance frontier
    count and the joint queue size; afterwards :meth:`degree` and
    :meth:`ratio` give the group's SD and sharing ratio, and
    :meth:`per_level_degree` gives figure 6's per-level trend.
    """

    group_size: int
    fq_totals: List[int] = field(default_factory=list)
    jfq_sizes: List[int] = field(default_factory=list)

    def record_level(self, fq_total: int, jfq_size: int) -> None:
        """Record one level's ``sum_j |FQ_j(k)|`` and ``|JFQ(k)|``."""
        if fq_total < jfq_size:
            raise GroupingError(
                "summed per-instance frontiers cannot be smaller than the "
                f"joint queue: {fq_total} < {jfq_size}"
            )
        self.fq_totals.append(int(fq_total))
        self.jfq_sizes.append(int(jfq_size))

    def degree(self) -> float:
        """Overall sharing degree SD for the observed run."""
        return sharing_degree(self.fq_totals, self.jfq_sizes)

    def ratio(self) -> float:
        """Overall sharing ratio SD / N."""
        return sharing_ratio(self.degree(), self.group_size)

    def per_level_degree(self) -> List[float]:
        """SD restricted to each level (figure 6's y-axis)."""
        out = []
        for fq_total, jfq in zip(self.fq_totals, self.jfq_sizes):
            out.append(fq_total / jfq if jfq else 0.0)
        return out

    def expected_speedup(self) -> float:
        """Lemma 1: E[speedup of joint over sequential] == SD."""
        return self.degree()
