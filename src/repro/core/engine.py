"""The user-facing iBFS engine: group, schedule, run, aggregate.

``IBFS`` ties the three techniques together the way section 8 runs
them: sources are partitioned into groups of at most ``N`` (bounded by
the device-memory capacity rule of section 3), each group runs as one
joint kernel (JSA- or BSA-based), and groups execute serially on one
device or are scheduled across a simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph
from repro.gpusim.cluster import Cluster
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.obs import profile as obs_profile
from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.joint import JointTraversal
from repro.core.result import ConcurrentResult, GroupStats
from repro.plan.policy import DirectionPolicy, Policy
from repro.plan.types import RunPlan

#: JSA stores one byte per instance-vertex; BSA one bit.
_STATUS_BYTES_PER_INSTANCE = {"joint": 1.0, "bitwise": 0.125}


@dataclass(frozen=True)
class IBFSConfig:
    """Configuration of an :class:`IBFS` engine.

    Attributes
    ----------
    group_size:
        Maximum concurrent instances per kernel (the paper's N, default
        128); clamped by the device capacity rule at run time.
    mode:
        ``"bitwise"`` (full iBFS, default) or ``"joint"`` (JSA-based
        joint traversal without the bitwise optimization).
    groupby:
        Apply the outdegree-based GroupBy rules; when false, groups are
        formed randomly (the paper's "random grouping" baseline).
    groupby_config:
        Rule parameters (p sequence / q / seed).
    early_termination:
        Bottom-up early termination (bitwise mode only).
    vector_width:
        Status words fetched per load instruction (1, 2, or 4 — the
        CUDA long/long2/long4 vector types of section 6; bitwise mode
        only).
    seed:
        Seed for random grouping.
    """

    group_size: int = 128
    mode: str = "bitwise"
    groupby: bool = True
    groupby_config: GroupByConfig = GroupByConfig()
    early_termination: bool = True
    vector_width: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise TraversalError("group_size must be positive")
        if self.mode not in ("joint", "bitwise"):
            raise TraversalError(f"unknown mode {self.mode!r}")
        if self.vector_width not in (1, 2, 4):
            raise TraversalError(
                f"vector_width must be 1, 2, or 4 (long/long2/long4); "
                f"got {self.vector_width!r}"
            )
        if self.mode == "joint" and self.vector_width != 1:
            raise TraversalError(
                "vector_width is a bitwise-mode knob (status-word vector "
                "loads); joint mode has no packed status words to "
                "vector-load — use mode='bitwise' or vector_width=1"
            )
        if not isinstance(self.groupby_config, GroupByConfig):
            raise TraversalError(
                f"groupby_config must be a GroupByConfig; "
                f"got {type(self.groupby_config).__name__}"
            )
        if not self.groupby and self.groupby_config != GroupByConfig():
            raise TraversalError(
                "custom groupby_config q/p thresholds have no effect with "
                "groupby=False (random grouping uses IBFSConfig.seed); "
                "enable groupby or drop the custom GroupByConfig"
            )


class IBFS:
    """Concurrent BFS engine implementing the paper's full system."""

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[IBFSConfig] = None,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.config = config or IBFSConfig()
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        if self.config.mode == "bitwise":
            self._group_engine = BitwiseTraversal(
                graph,
                self.device,
                self.policy,
                early_termination=self.config.early_termination,
                vector_width=self.config.vector_width,
                planner=planner,
            )
        else:
            self._group_engine = JointTraversal(
                graph, self.device, self.policy, planner=planner
            )
        #: The policy actually making per-level decisions (the explicit
        #: ``planner`` or the legacy knobs wrapped into a HeuristicPolicy).
        self.planner = self._group_engine.planner

    @property
    def name(self) -> str:
        suffix = "+groupby" if self.config.groupby else "+random"
        return f"ibfs-{self.config.mode}{suffix}"

    # ------------------------------------------------------------------
    def make_groups(self, sources: Sequence[int]) -> List[List[int]]:
        """Partition the sources per the configuration (GroupBy or random),
        honoring the device capacity rule."""
        group_size = self.effective_group_size()
        if self.config.groupby:
            return group_sources(
                self.graph, sources, group_size, self.config.groupby_config
            )
        return random_groups(sources, group_size, self.config.seed)

    def effective_group_size(self) -> int:
        """Configured N clamped by section 3's memory-capacity rule."""
        capacity = self.device.max_group_size(
            self.graph,
            status_bytes_per_instance=_STATUS_BYTES_PER_INSTANCE[self.config.mode],
        )
        if capacity <= 0:
            raise TraversalError(
                f"graph does not leave room for any BFS instance on "
                f"{self.device.config.name}"
            )
        return min(self.config.group_size, capacity)

    # ------------------------------------------------------------------
    def run_group(
        self,
        group: Sequence[int],
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ) -> ConcurrentResult:
        """Execute one pre-formed group as a single joint kernel.

        This is the re-entrant per-group execution hook the serving
        layer (:mod:`repro.service`) builds on: callers that form their
        own batches (e.g. a micro-batcher draining an online request
        queue) run each batch through this method without re-grouping.
        The group must respect the device capacity rule and contain
        distinct in-range sources.  Depths are always stored — the
        returned :class:`ConcurrentResult` holds exactly one group.

        ``plan`` replays a previously recorded
        :class:`~repro.plan.types.RunPlan` bit-identically, skipping
        all per-level heuristic evaluation.
        """
        group = [int(s) for s in group]
        if not group:
            raise TraversalError("a group needs at least one source")
        if len(set(group)) != len(group):
            raise TraversalError("group sources must be distinct")
        for s in group:
            if not 0 <= s < self.graph.num_vertices:
                raise TraversalError(f"source {s} out of range")
        capacity = self.effective_group_size()
        if len(group) > capacity:
            raise TraversalError(
                f"group of {len(group)} exceeds the effective group size "
                f"{capacity}"
            )
        with obs_profile.span(
            "engine.run_group",
            group_size=len(group),
            mode=self.config.mode,
            policy=self.planner.name if plan is None else plan.policy,
            replay=plan is not None,
        ):
            depths, record, stats = self._group_engine.run_group(
                group, max_depth=max_depth, plan=plan
            )
        counters = ProfilerCounters()
        counters.merge(record.counters)
        return ConcurrentResult(
            engine=self.name,
            sources=group,
            seconds=stats.seconds,
            counters=counters,
            depths=np.asarray(depths),
            num_vertices=self.graph.num_vertices,
            groups=[stats],
        )

    # ------------------------------------------------------------------
    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
        cluster: Optional[Cluster] = None,
    ) -> ConcurrentResult:
        """Traverse from all sources.

        Groups run serially on this engine's device; pass ``cluster`` to
        instead schedule the groups across multiple simulated devices
        (figure 17), in which case ``seconds`` is the cluster makespan.
        """
        sources = [int(s) for s in sources]
        if not sources:
            raise TraversalError("at least one source is required")
        groups = self.make_groups(sources)
        counters = ProfilerCounters()
        group_stats: List[GroupStats] = []
        depth_rows = {} if store_depths else None
        sole_depths = None

        for group in groups:
            part = self.run_group(group, max_depth=max_depth)
            counters.merge(part.counters)
            group_stats.append(part.groups[0])
            if depth_rows is not None:
                if len(groups) == 1 and group == sources:
                    sole_depths = part.depths
                else:
                    for row, source in enumerate(group):
                        depth_rows[source] = part.depths[row]

        if cluster is not None:
            seconds = cluster.run([g.seconds for g in group_stats]).makespan
        else:
            seconds = sum(g.seconds for g in group_stats)

        matrix = None
        if sole_depths is not None:
            # One group in source order: the group's matrix IS the
            # result — stacking row views would copy it verbatim.
            matrix = sole_depths
        elif depth_rows is not None:
            matrix = np.stack([depth_rows[s] for s in sources])
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=seconds,
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
            groups=group_stats,
        )

    # ------------------------------------------------------------------
    def run_all(
        self,
        max_depth: Optional[int] = None,
        store_depths: bool = False,
        cluster: Optional[Cluster] = None,
    ) -> ConcurrentResult:
        """All-pairs shortest path: traverse from every vertex (i = |V|)."""
        return self.run(
            range(self.graph.num_vertices),
            max_depth=max_depth,
            store_depths=store_depths,
            cluster=cluster,
        )
