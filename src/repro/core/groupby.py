"""Outdegree-based GroupBy (section 5.2).

Two complementary rules pick which BFS instances to run together:

* **Rule 1** — the source's outdegree is less than ``p`` (small sources
  do not dilute the sharing contributed by the hub);
* **Rule 2** — the sources connect to at least one common vertex whose
  outdegree is greater than ``q`` (a shared hub makes their frontiers
  collide within the first levels, and by Theorem 1 early sharing
  predicts later sharing).

Application order follows the paper: groups satisfying both rules are
formed first (with ``p`` drawn in ascending order from a power-of-two
sequence), undersized groups with *different* hubs are combined next,
and whatever remains is grouped randomly.  For uniform-degree graphs,
where no vertex clears ``q``, the fallback groups sources that share
common neighbors (section 5.2's "slightly different rule").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GroupingError
from repro.graph.csr import CSRGraph

#: Default hub-outdegree threshold; the paper picks q = 128 after the
#: figure 8 sweep.
DEFAULT_Q = 128
#: Default ascending source-outdegree thresholds for Rule 1.
DEFAULT_P_SEQUENCE = (4, 16, 64, 128)


@dataclass(frozen=True)
class GroupByConfig:
    """Parameters of the GroupBy rules."""

    #: Rule 2 hub threshold.
    q: int = DEFAULT_Q
    #: Rule 1 thresholds, tried in ascending order.
    p_sequence: Tuple[int, ...] = DEFAULT_P_SEQUENCE
    #: Seed for the random fallback grouping.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.q < 0:
            raise GroupingError("q must be non-negative")
        if not self.p_sequence or any(p <= 0 for p in self.p_sequence):
            raise GroupingError("p_sequence must contain positive thresholds")
        if tuple(sorted(self.p_sequence)) != tuple(self.p_sequence):
            raise GroupingError("p_sequence must be ascending")


def random_groups(
    sources: Sequence[int], group_size: int, seed: int = 0
) -> List[List[int]]:
    """Shuffle the sources and chunk them into groups (the baseline the
    paper calls "random grouping")."""
    if group_size <= 0:
        raise GroupingError("group_size must be positive")
    _check_sources(sources)
    rng = np.random.default_rng(seed)
    shuffled = list(sources)
    rng.shuffle(shuffled)
    return [
        [int(s) for s in shuffled[i : i + group_size]]
        for i in range(0, len(shuffled), group_size)
    ]


def group_sources(
    graph: CSRGraph,
    sources: Sequence[int],
    group_size: int,
    config: Optional[GroupByConfig] = None,
) -> List[List[int]]:
    """Partition the sources into GroupBy-optimized groups.

    Every source appears in exactly one group; groups hold at most
    ``group_size`` sources each.
    """
    if group_size <= 0:
        raise GroupingError("group_size must be positive")
    _check_sources(sources)
    config = config or GroupByConfig()
    sources = [int(s) for s in sources]
    for s in sources:
        if not 0 <= s < graph.num_vertices:
            raise GroupingError(f"source {s} out of range")

    degrees = graph.out_degrees()
    hub_of = {s: _best_hub(graph, degrees, s, config.q) for s in sources}

    # Phase 1: Rule 1 + Rule 2.  Ascending p admits the smallest sources
    # first, bucketed by their shared hub.
    assigned: Dict[int, int] = {}
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for p in config.p_sequence:
        for s in sources:
            if s in assigned:
                continue
            hub = hub_of[s]
            if hub is None or degrees[s] >= p:
                continue
            buckets.setdefault((hub, p), []).append(s)
            assigned[s] = hub

    groups: List[List[int]] = []
    partial: List[List[int]] = []
    for _, members in sorted(
        buckets.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        for i in range(0, len(members), group_size):
            chunk = members[i : i + group_size]
            if len(chunk) == group_size:
                groups.append(chunk)
            else:
                partial.append(chunk)

    # Phase 2: combine undersized hub groups (different hubs together).
    partial = _merge_partials(partial, group_size, groups)

    # Phase 3: uniform-graph fallback — group leftovers by a shared
    # common neighbor, then randomly.
    leftovers = [s for s in sources if s not in assigned]
    leftovers.extend(s for chunk in partial for s in chunk)
    if leftovers:
        groups.extend(
            _fallback_groups(graph, leftovers, group_size, config.seed)
        )
    return groups


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def auto_tune_q(
    graph: CSRGraph,
    sources: Sequence[int],
    group_size: int,
    candidates: Tuple[int, ...] = (4, 16, 64, 128, 256, 1024),
    probe_levels: int = 3,
) -> int:
    """Pick the hub threshold q with the best early sharing (figure 8).

    The paper selects q = 128 after sweeping relative performance.
    Lemma 2 says the first levels' sharing predicts the speedup, so this
    tuner runs only ``probe_levels`` levels per candidate grouping and
    returns the q whose groups share most early — a cheap programmatic
    version of the figure 8 sweep.
    """
    from repro.core.joint import JointTraversal

    if group_size <= 0:
        raise GroupingError("group_size must be positive")
    if not candidates:
        raise GroupingError("candidates must not be empty")
    engine = JointTraversal(graph)
    best_q = candidates[0]
    best_score = -1.0
    for q in candidates:
        groups = group_sources(
            graph, sources, group_size, GroupByConfig(q=q)
        )
        total_fq = 0
        total_jfq = 0
        for members in groups:
            _, _, stats = engine.run_group(members, max_depth=probe_levels)
            for fq, jfq in (*stats.td_sharing, *stats.bu_sharing):
                total_fq += fq
                total_jfq += jfq
        score = total_fq / total_jfq if total_jfq else 0.0
        if score > best_score:
            best_score = score
            best_q = q
    return best_q


def _check_sources(sources: Sequence[int]) -> None:
    if len(set(int(s) for s in sources)) != len(sources):
        raise GroupingError("sources must be distinct (the paper requires "
                            "i distinct source vertices)")


def _best_hub(
    graph: CSRGraph, degrees: np.ndarray, source: int, q: int
) -> Optional[int]:
    """Rule 2: the highest-outdegree neighbor above q, if any.

    The paper notes the hub need not be a direct neighbor ("as long as
    within the first several levels"); direct neighbors already give the
    strongest level-2 collision and keep grouping O(|E|).
    """
    neighbors = graph.neighbors(source)
    if neighbors.size == 0:
        return None
    neighbor_degrees = degrees[neighbors]
    best = int(np.argmax(neighbor_degrees))
    if neighbor_degrees[best] > q:
        return int(neighbors[best])
    return None


def _merge_partials(
    partial: List[List[int]], group_size: int, groups: List[List[int]]
) -> List[List[int]]:
    """Greedily concatenate undersized hub groups into full ones."""
    partial = sorted(partial, key=len, reverse=True)
    merged: List[int] = []
    remaining: List[List[int]] = []
    for chunk in partial:
        merged.extend(chunk)
        while len(merged) >= group_size:
            groups.append(merged[:group_size])
            merged = merged[group_size:]
    if merged:
        remaining.append(merged)
    return remaining


def _fallback_groups(
    graph: CSRGraph, sources: List[int], group_size: int, seed: int
) -> List[List[int]]:
    """Group by the most frequent common neighbor, then randomly.

    This is the uniform-graph rule: "iBFS can select a group of BFS
    instances if they share some common vertices from the sources".
    """
    buckets: Dict[int, List[int]] = {}
    isolated: List[int] = []
    for s in sources:
        neighbors = graph.neighbors(s)
        if neighbors.size == 0:
            isolated.append(s)
        else:
            buckets.setdefault(int(neighbors.min()), []).append(s)

    groups: List[List[int]] = []
    pending: List[int] = []
    for _, members in sorted(
        buckets.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        pending.extend(members)
        while len(pending) >= group_size:
            groups.append(pending[:group_size])
            pending = pending[group_size:]
    pending.extend(isolated)

    rng = np.random.default_rng(seed)
    rng.shuffle(pending)
    for i in range(0, len(pending), group_size):
        groups.append(pending[i : i + group_size])
    return [g for g in groups if g]
