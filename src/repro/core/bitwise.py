"""Bitwise traversal (section 6): BSA, bitwise inspection, early termination.

One *bit* per (vertex, instance) pair replaces the JSA's byte, and a
**single thread** inspects a vertex for the whole group with one OR:

* top-down (Algorithm 1): ``BSA_{k+1}[v] |= BSA_k[f]`` for every
  neighbor ``v`` of frontier ``f`` — atomics merge concurrent updates;
* bottom-up: ``BSA_{k+1}[f] |= BSA_k[v]`` neighbor by neighbor, with
  **early termination** the moment ``BSA_{k+1}[f]`` is all-ones;
* frontier identification (Algorithm 2): top-down frontiers are
  vertices whose word changed (``XOR``), bottom-up frontiers vertices
  with unset bits (``NOT``).

Because bits are monotone (never reset), early termination is sound —
the property MS-BFS forfeits by resetting its status array each level.
:class:`BitwiseTraversal` exposes ``early_termination`` and
``reset_per_level`` switches so the MS-BFS baseline can reuse this
engine with the paper's described differences.

Per-level choices — direction per instance, bottom-up kernel variant,
vector load width, workspace snapshot strategy, early termination —
come from the planner (:mod:`repro.plan`): each executed level consumes
exactly one :class:`~repro.plan.types.LevelDecision` from the policy's
session, and the sequence is recorded as a
:class:`~repro.plan.types.RunPlan` on the returned
:class:`~repro.core.result.GroupStats`.  Passing ``plan=`` to
:meth:`run_group` replays a recorded plan bit-identically, skipping the
heuristic evaluation (the replay session never sees level statistics).

Host-side execution runs on the :mod:`repro.kernels` primitives: the
top-down scatter is a segmented reduction, ``BSA_k`` is kept as a
dirty-row snapshot instead of a full copy, bottom-up scans are
degree-bucketed vector passes, and per-instance bookkeeping is one
vectorized pass over the depth matrix.  All simulated counters are
bit-identical to the frozen reference implementation
(:mod:`repro.kernels.reference`); the equivalence suite enforces it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

import repro.native as native
from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.device import Device
from repro.obs import profile as obs_profile
from repro.core.result import GroupStats
from repro.core.sharing import SharingObserver
from repro.core.status_array import combine_masks, instance_masks, lanes_for
from repro.kernels import (
    FullSnapshotWorkspace,
    LevelWorkspace,
    bucketed_or_scan,
    per_bit_counts,
    per_bit_weighted,
    round_major_probes,
    scatter_or,
    scatter_plan,
    unpack_lane_bits,
)
from repro.plan.policy import (
    DirectionPolicy,
    HeuristicPolicy,
    Policy,
    RecordedPolicy,
)
from repro.plan.types import Direction, LevelDecision, LevelStats, RunPlan
from repro.util import gather_neighbors

INSTRUCTIONS_PER_INSPECTION = 6
INSTRUCTIONS_PER_VERTEX = 6

UNVISITED = -1


def _materialize_depths(depths_vm: np.ndarray) -> np.ndarray:
    """Transpose the vertex-major depth matrix into the (group, n) int32
    result layout.

    Done in row blocks so each block's strided reads stay cache
    resident: a fused ``ascontiguousarray(depths_vm.T, dtype=int32)``
    walks the int8 input one 64-byte-strided element per output cell —
    a cache miss per element at scale — where block copies cost a
    fraction of that.  The compiled backend runs the same tiled
    widening transpose in C when resolved.
    """
    if native.enabled():
        return native.materialize_depths(depths_vm)
    num_vertices, group_size = depths_vm.shape
    depths = np.empty((group_size, num_vertices), dtype=np.int32)
    block = 4096
    for i in range(0, num_vertices, block):
        depths[:, i:i + block] = depths_vm[i:i + block].T
    return depths


class BitwiseTraversal:
    """Bitwise (BSA-based) joint traversal of one group.

    Parameters
    ----------
    graph:
        Graph to traverse.
    device:
        Simulated execution target.
    policy:
        Legacy direction-switch policy shared by all instances; wrapped
        together with the ``early_termination`` / ``vector_width`` /
        ``direction_mode`` knobs into an equivalent
        :class:`~repro.plan.policy.HeuristicPolicy` when no ``planner``
        is given.
    early_termination:
        Stop a bottom-up scan once every tracked bit of the frontier is
        set (iBFS); disable to model MS-BFS.
    reset_per_level:
        Model MS-BFS's per-level ``visit`` array reset: adds the reset
        traffic and disables the XOR-based identification discount.
    thread_per_instance:
        Model MS-BFS's one-software-thread-per-instance execution
        (thread demand = N) instead of iBFS's thread-per-frontier.
    vector_width:
        CUDA vector data types (section 6): a ``long2``/``long4`` load
        fetches 2/4 status words per instruction, so multi-lane status
        scans issue ``1/width`` as many load requests and instructions.
        Bytes moved (transactions) are unchanged.
    direction_mode:
        ``"per-instance"`` (default — each instance switches direction
        on its own Beamer state, as iBFS's mixed-direction kernel
        allows) or ``"per-group"`` (all instances vote once on the
        aggregate frontier statistics and switch together — simpler
        kernels, but stragglers drag the group; the ablation benchmark
        quantifies the difference).  Depths are exact either way.
    planner:
        A :class:`~repro.plan.policy.Policy` that owns every per-level
        decision.  When given, it overrides the legacy knobs above
        (``reset_per_level`` and ``thread_per_instance`` stay engine
        properties — they model a different machine, not a per-level
        choice).
    """

    name = "bitwise"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        early_termination: bool = True,
        reset_per_level: bool = False,
        thread_per_instance: bool = False,
        vector_width: int = 1,
        direction_mode: str = "per-instance",
        planner: Optional[Policy] = None,
    ) -> None:
        if vector_width not in (1, 2, 4):
            raise TraversalError(
                f"vector_width must be 1, 2, or 4 (long/long2/long4); "
                f"got {vector_width}"
            )
        if direction_mode not in ("per-instance", "per-group"):
            raise TraversalError(
                f"direction_mode must be 'per-instance' or 'per-group'; "
                f"got {direction_mode!r}"
            )
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        self.early_termination = early_termination
        self.reset_per_level = reset_per_level
        self.thread_per_instance = thread_per_instance
        self.vector_width = vector_width
        self.direction_mode = direction_mode
        if planner is None:
            planner = HeuristicPolicy.from_direction_policy(
                self.policy,
                direction_mode=direction_mode,
                early_termination=early_termination,
                vector_width=vector_width,
            )
        self.planner = planner
        self._reverse = graph.reverse() if planner.allow_bottom_up else None
        #: Out-degree view, hoisted once per traversal object (the hot
        #: loops used to look it up several times per level).
        self._out_degrees = graph.out_degrees()
        self._workspace: Optional[LevelWorkspace] = None
        self._workspace_full: Optional[FullSnapshotWorkspace] = None

    # ------------------------------------------------------------------
    def _get_workspace(self, n: int, lanes: int, strategy: str):
        if strategy == "full":
            ws = self._workspace_full
            if ws is None or ws.num_vertices != n or ws.lanes != lanes:
                ws = FullSnapshotWorkspace(n, lanes)
                self._workspace_full = ws
            return ws
        ws = self._workspace
        if ws is None or ws.num_vertices != n or ws.lanes != lanes:
            ws = LevelWorkspace(n, lanes)
            self._workspace = ws
        return ws

    # ------------------------------------------------------------------
    def run_group(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ):
        """Traverse all sources jointly with the bitwise status array.

        Returns ``(depths, record, stats)`` like
        :meth:`JointTraversal.run_group`.  With ``plan=`` the recorded
        decisions replay verbatim and no heuristic runs.
        """
        sources = [int(s) for s in sources]
        n = self.graph.num_vertices
        group_size = len(sources)
        if group_size == 0:
            raise TraversalError("group must contain at least one source")
        for s in sources:
            if not 0 <= s < n:
                raise TraversalError(f"source {s} out of range [0, {n})")

        if plan is not None:
            planner: Policy = RecordedPolicy(plan)
        else:
            planner = self.planner
        total_edges = self.graph.num_edges
        session = planner.session(group_size, n, total_edges)
        wants_stats = session.wants_stats
        run_plan = RunPlan(
            policy=planner.name, engine=self.name, group_size=group_size
        )

        lanes = lanes_for(group_size)
        masks = instance_masks(group_size)
        bsa = np.zeros((n, lanes), dtype=np.uint64)
        # Depths live vertex-major during the traversal so each level's
        # update is a contiguous row gather / masked fill / write-back
        # over the changed rows; one transpose at the end restores the
        # (group_size, n) result layout.  The narrowest dtype that can
        # hold the depths seen so far keeps the update traffic small
        # (int8 covers diameter < 126 — almost every real input); the
        # loop widens it well before overflow.
        depths_vm = np.full((n, group_size), UNVISITED, dtype=np.int8)
        for j, s in enumerate(sources):
            bsa[s] |= masks[j]
            depths_vm[s, j] = 0

        active = np.ones(group_size, dtype=bool)
        out_degrees = self._out_degrees
        # Running per-instance visited-degree sum: every vertex joins the
        # frontier exactly once, so accumulating new-frontier degrees is
        # the dense "sum over depth >= 0" recomputed each level.
        visited_deg = out_degrees[np.asarray(sources, dtype=np.int64)].astype(
            np.int64
        )
        # Current-frontier degree sum per instance (depth == level); at
        # level 0 the frontier is exactly the source.
        frontier_deg = visited_deg.copy()
        # Cumulative visited-vertex count per instance (the adaptive
        # cost model's unvisited estimate); the source is visited.
        visited_count = np.ones(group_size, dtype=np.int64)
        # Current frontier as (rows, diff-words): row i of the frontier
        # gained exactly the instance bits set in diff[i] last level, so
        # depth[j, v] == level iff bit j of the row's word is set.  Each
        # level's dirty-row diff IS the next level's frontier — no dense
        # (group_size, n) scan ever runs.
        uniq_src, src_inv = np.unique(
            np.asarray(sources, dtype=np.int64), return_inverse=True
        )
        init_diff = np.zeros((uniq_src.size, lanes), dtype=np.uint64)
        np.bitwise_or.at(init_diff, src_inv, masks)
        frontier = (uniq_src, init_diff)
        frontier_counts = np.ones(group_size, dtype=np.int64)

        record = RunRecord()
        observer = SharingObserver(group_size)
        sharing_log = {"td": [], "bu": []}
        bu_inspections = np.zeros(group_size, dtype=np.int64)

        decision: Optional[LevelDecision] = None
        stats_prev: Optional[LevelStats] = None
        level = 0
        while active.any():
            if max_depth is not None and level >= max_depth:
                break
            if level > n + 1:
                raise TraversalError("traversal failed to converge")
            if level >= 120 and depths_vm.dtype == np.int8:
                depths_vm = depths_vm.astype(np.int16)
            elif level >= 32000 and depths_vm.dtype == np.int16:
                depths_vm = depths_vm.astype(np.int32)
            # One decision per executed level: the first comes from
            # initial(), each next from the previous level's observed
            # statistics (None under replay — nothing is recomputed).
            if decision is None:
                decision = session.initial()
            else:
                decision = session.next(stats_prev)
            if decision.num_instances != group_size:
                raise TraversalError(
                    f"planner decided {decision.num_instances} instances "
                    f"for a group of {group_size}"
                )
            run_plan.append(decision)
            directions = decision.directions
            td_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.TOP_DOWN
            ]
            bu_instances = [
                j for j in range(group_size)
                if active[j] and directions[j] is Direction.BOTTOM_UP
            ]
            if bu_instances and self._reverse is None:
                # A replayed or adaptive plan may go bottom-up even when
                # the construction-time policy never would have.
                self._reverse = self.graph.reverse()
            workspace = self._get_workspace(n, lanes, decision.snapshot)
            # Per-level wall-clock profile span; a no-op flag test when
            # profiling is off (the <= 5% overhead budget boundary).
            with obs_profile.span(
                "level",
                depth=level,
                td_instances=len(td_instances),
                bu_instances=len(bu_instances),
                kernel=decision.kernel,
                vector_width=decision.vector_width,
                snapshot=decision.snapshot,
                early_termination=decision.early_termination,
                policy=planner.name,
                replay=not wants_stats,
            ):
                progressed, counts, frontier_edges, frontier = self._level(
                    bsa,
                    depths_vm,
                    masks,
                    workspace,
                    td_instances,
                    bu_instances,
                    level,
                    record,
                    observer,
                    sharing_log,
                    bu_inspections,
                    frontier_deg,
                    frontier,
                    frontier_counts,
                    decision,
                )
            frontier_counts = counts
            visited_deg += frontier_edges
            unexplored = total_edges - visited_deg
            frontier_deg = frontier_edges
            visited_count += counts
            for j in range(group_size):
                if not active[j]:
                    continue
                if directions[j] is Direction.TOP_DOWN:
                    if counts[j] == 0:
                        active[j] = False
                else:
                    if not progressed[j]:
                        active[j] = False
            if wants_stats:
                stats_prev = LevelStats(
                    level=level,
                    num_vertices=n,
                    total_edges=total_edges,
                    frontier_vertices=tuple(int(c) for c in counts),
                    frontier_edges=tuple(int(e) for e in frontier_edges),
                    unexplored_edges=tuple(int(u) for u in unexplored),
                    visited_vertices=tuple(int(v) for v in visited_count),
                    active=tuple(bool(a) for a in active),
                )
            level += 1

        record.counters.kernel_launches += 1
        depths = _materialize_depths(depths_vm)
        seconds = self.device.cost.kernel_time(record.levels)
        stats = GroupStats(
            sources=sources,
            seconds=seconds,
            sharing_degree=observer.degree(),
            sharing_ratio=observer.ratio(),
            jfq_sizes=list(observer.jfq_sizes),
            per_level_sharing=observer.per_level_degree(),
            td_sharing=sharing_log["td"],
            bu_sharing=sharing_log["bu"],
            bottom_up_inspections=bu_inspections.tolist(),
            plan=run_plan,
        )
        return depths, record, stats

    # ------------------------------------------------------------------
    # One synchronized level
    # ------------------------------------------------------------------
    def _level(
        self,
        bsa: np.ndarray,
        depths_vm: np.ndarray,
        masks: np.ndarray,
        workspace,
        td_instances: List[int],
        bu_instances: List[int],
        level: int,
        record: RunRecord,
        observer: SharingObserver,
        sharing_log: dict,
        bu_inspections: np.ndarray,
        frontier_deg: np.ndarray,
        frontier,
        frontier_counts: np.ndarray,
        decision: LevelDecision,
    ):
        mem = self.device.memory
        counters = record.counters
        group_size = masks.shape[0]
        num_vertices = depths_vm.shape[0]
        lanes = bsa.shape[1]
        word_bytes = lanes * 8
        progressed = np.zeros(group_size, dtype=bool)
        counts = np.zeros(group_size, dtype=np.int64)
        fdeg_next = np.zeros(group_size, dtype=np.int64)
        out_degrees = self._out_degrees

        # Frontier masks come from sparse state, never a (group_size, n)
        # scan: the top-down frontier is last level's changed rows whose
        # diff word intersects a top-down instance bit; the bottom-up
        # frontier reads unset bits straight off the BSA words (depth is
        # UNVISITED iff the bit is unset — bits are monotone and
        # extraction mirrors them exactly).
        changed_prev, diff_prev = frontier
        td_mask = np.zeros(num_vertices, dtype=bool)
        fq_td = 0
        if td_instances:
            fq_td = int(frontier_counts[td_instances].sum())
            if changed_prev.size:
                td_sel = combine_masks(masks, td_instances)
                hit = (diff_prev[:, 0] & td_sel[0]) != 0
                for lane in range(1, lanes):
                    hit |= (diff_prev[:, lane] & td_sel[lane]) != 0
                td_mask[changed_prev[hit]] = True
        if bu_instances:
            bu_lane_mask = combine_masks(masks, bu_instances)
            unset = (~bsa) & bu_lane_mask
            bu_mask_vertices = np.any(unset != 0, axis=1)
            fq_bu = int(np.bitwise_count(unset).sum())
        else:
            bu_lane_mask = None
            bu_mask_vertices = np.zeros(num_vertices, dtype=bool)
            fq_bu = 0
        jfq_size = int(np.count_nonzero(td_mask | bu_mask_vertices))
        observer.record_level(fq_td + fq_bu, jfq_size)
        sharing_log["td"].append((fq_td, int(np.count_nonzero(td_mask))))
        sharing_log["bu"].append(
            (fq_bu, int(np.count_nonzero(bu_mask_vertices)))
        )
        if jfq_size == 0:
            record.append(LevelRecord(depth=level, direction="td"))
            counters.levels += 1
            empty_frontier = (
                np.empty(0, dtype=np.int64),
                np.empty((0, lanes), dtype=np.uint64),
            )
            return progressed, counts, fdeg_next, empty_frontier

        workspace.begin_level(bsa)
        loads = 0
        stores = 0
        load_requests = 0
        store_requests = 0
        atomics = 0
        inspections_level = 0
        # TEPS counts each *instance's* traversed edges (the paper's
        # workload does not shrink under sharing); physical inspections
        # count the single-thread bitwise operations actually executed.
        logical_edges = 0
        if td_instances:
            # frontier_deg[j] is the degree sum over depth[j] == level —
            # the same per-instance row sums the dense eq-matrix product
            # would produce.
            logical_edges += int(frontier_deg[td_instances].sum())

        # --- Top-down pass: BSA[v] |= BSA_k[f] ------------------------
        td_frontier = np.flatnonzero(td_mask).astype(VERTEX_DTYPE)
        if td_frontier.size:
            td_lane_mask = combine_masks(masks, td_instances)
            # BSA_k values: nothing has written this level yet.
            frontier_words = bsa[td_frontier] & td_lane_mask
            degrees = out_degrees[td_frontier]
            _, neighbors = gather_neighbors(self.graph, td_frontier)
            # One thread per frontier performs one OR per neighbor,
            # regardless of how many instances share the frontier.
            inspections_level += int(neighbors.size)
            if native.effective(decision.kernel, lanes):
                # Fused CSR edge-map: the compiled backend walks the
                # frontier's adjacency directly (word row r covers the
                # next degrees[r] targets), skipping the sort/reduceat
                # scatter plan and the materialized np.repeat index.
                unique_targets = native.unique_targets(
                    neighbors, num_vertices
                )
                workspace.stash_rows(bsa, unique_targets)
                native.scatter_or(
                    bsa, neighbors, frontier_words, repeats=degrees
                )
            else:
                plan = scatter_plan(neighbors)
                unique_targets = plan.unique_targets
                workspace.stash_rows(bsa, unique_targets)
                word_index = np.repeat(
                    np.arange(td_frontier.size, dtype=np.int64), degrees
                )
                scatter_or(bsa, neighbors, frontier_words, plan, word_index)

            loads += mem.stream_transactions(td_frontier.size * 8)
            frontier_ld, frontier_req = mem.coalesced_transactions(
                td_frontier, word_bytes
            )
            loads += frontier_ld
            loads += mem.adjacency_transactions(degrees)
            nb_ld, nb_req = mem.coalesced_transactions(neighbors, word_bytes)
            loads += nb_ld
            load_requests += frontier_req + nb_req
            # Shared-memory merging inside each CTA collapses duplicate
            # neighbor updates; only the merged words hit global atomics.
            atomics += int(unique_targets.size)
            counters.shared_memory_accesses += int(
                neighbors.size - unique_targets.size
            )
            st_txn, st_req = mem.coalesced_transactions(unique_targets, word_bytes)
            stores += st_txn
            store_requests += st_req

        # --- Bottom-up pass: BSA[f] |= BSA_k[v], early termination ----
        if bu_instances:
            tally_before = int(bu_inspections.sum())
            probes_total, early, updated = self._bottom_up_pass(
                bsa,
                workspace,
                bu_mask_vertices,
                bu_lane_mask,
                bu_inspections,
                early_termination=decision.early_termination,
                kernel=decision.kernel,
            )
            logical_edges += int(bu_inspections.sum()) - tally_before
            inspections_level += probes_total
            counters.bottom_up_inspections += probes_total
            counters.early_terminations += early
            bu_frontier = np.flatnonzero(bu_mask_vertices).astype(VERTEX_DTYPE)
            loads += mem.stream_transactions(bu_frontier.size * 8)
            per_line = self.device.config.entries_per_transaction
            loads += int(
                np.sum(
                    (self._per_vertex_probes + per_line - 1) // per_line
                )
            )
            if self._probed_neighbors is None:
                # Native scans never materialized the round-major
                # stream; the fused kernel prices the identical stream.
                probe_ld, probe_req = native.bottom_up_coalesced(
                    *self._probe_parts,
                    word_bytes,
                    mem.config.transaction_bytes,
                    mem.config.warp_size,
                )
            else:
                probe_ld, probe_req = mem.coalesced_transactions(
                    self._probed_neighbors, word_bytes
                )
            loads += probe_ld
            load_requests += probe_req
            st_txn, st_req = mem.coalesced_transactions(updated, word_bytes)
            stores += st_txn
            store_requests += st_req
            # Bottom-up merges updates tree-wise within warps/CTAs,
            # avoiding atomics (section 6, Summary).

        # --- Depth extraction (frontier identification, Algorithm 2) --
        # Only dirty rows can differ from BSA_k; the workspace hands back
        # exactly the rows a full-array XOR would find, with their diffs.
        # Bit j of a diff word is set iff vertex v first gained instance
        # j's bit this level, i.e. depth[j, v] == level + 1 — so the
        # vertex-major depth rows take one masked fill, the per-instance
        # statistics come from histogram folds over the packed words
        # (O(changed bytes), not O(new pairs)), and (changed, diff) IS
        # next level's frontier.
        changed, diff = workspace.changed(bsa)
        if changed.size:
            counts += per_bit_counts(
                diff, group_size, kernel=decision.kernel
            )
            fdeg_next += per_bit_weighted(
                diff, out_degrees[changed], group_size,
                kernel=decision.kernel,
            )
            # A newly set bit's depth cell still holds UNVISITED (-1), so
            # adding (level + 2) exactly where bits are set rewrites it
            # to level + 1 with pure SIMD arithmetic — no boolean-where
            # pass.  Rows in ``changed`` are unique, so the fancy-indexed
            # in-place add is a plain gather/add/scatter.
            if native.effective(decision.kernel, lanes):
                native.depth_update(depths_vm, changed, diff, level + 2)
            else:
                upd = unpack_lane_bits(diff, group_size).astype(
                    depths_vm.dtype
                )
                upd *= depths_vm.dtype.type(level + 2)
                depths_vm[changed] += upd
            progressed = counts > 0

        # Identification scans BSA_k and BSA_{k+1}; MS-BFS additionally
        # rewrites its per-level visit array.  Vector loads (long2/long4)
        # fetch several lanes per instruction: same bytes, fewer
        # requests and fewer scan instructions.
        words_per_vertex = -(-lanes // decision.vector_width)
        scan_ops = num_vertices * words_per_vertex
        loads += 2 * mem.stream_transactions(num_vertices * word_bytes)
        load_requests += 2 * self.device.warps_for(scan_ops)
        if self.reset_per_level:
            stores += mem.stream_transactions(num_vertices * word_bytes)
            store_requests += self.device.warps_for(scan_ops)
        stores += mem.stream_transactions(jfq_size * 8)
        store_requests += self.device.warps_for(jfq_size)
        counters.frontier_enqueues += jfq_size

        instructions = (
            inspections_level * INSTRUCTIONS_PER_INSPECTION * words_per_vertex
            + (jfq_size + scan_ops) * INSTRUCTIONS_PER_VERTEX
        )
        counters.inspections += inspections_level
        counters.edges_traversed += logical_edges
        counters.levels += 1
        counters.atomic_operations += atomics
        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += load_requests
        counters.global_store_requests += store_requests
        counters.instructions += instructions

        threads = group_size if self.thread_per_instance else jfq_size
        record.append(
            LevelRecord(
                depth=level,
                direction="bu" if bu_instances and not td_instances else "td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=atomics,
                instructions=instructions,
                threads=threads,
                frontier_size=jfq_size,
            )
        )
        return progressed, counts, fdeg_next, (changed, diff)

    # ------------------------------------------------------------------
    def _bottom_up_pass(
        self,
        bsa: np.ndarray,
        workspace,
        bu_mask_vertices: np.ndarray,
        bu_lane_mask: np.ndarray,
        bu_inspections: np.ndarray,
        early_termination: bool = True,
        kernel: str = "auto",
    ):
        """Scan in-neighbors of unvisited vertices, OR-ing their words.

        A single thread serves each frontier; with early termination it
        stops at the first prefix of the neighbor list that fills every
        tracked bit.  The scan itself runs as degree-bucketed vector
        passes (:func:`~repro.kernels.bottomup.bucketed_or_scan`); the
        per-instance inspection attribution (an instance "inspects" a
        vertex while its own bit is still unset — figure 11's balance
        metric) and the round-major probe stream for the transaction
        model come out identical to the synchronized round loop.

        Returns ``(probes, early_terminations, updated_vertices)`` and
        stashes per-vertex probe counts for the caller's transaction
        accounting.
        """
        assert self._reverse is not None
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices

        frontier = np.flatnonzero(bu_mask_vertices).astype(VERTEX_DTYPE)
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        state = workspace.snapshot_rows(bsa, frontier)
        state &= bu_lane_mask
        probes, acc, done, stream = bucketed_or_scan(
            indices,
            starts,
            ends,
            state,
            bu_lane_mask,
            bu_lane_mask,
            early_termination,
            lambda rows: workspace.snapshot_rows(bsa, rows),
            bu_inspections,
            kernel=kernel,
            source=workspace.snapshot_source(bsa),
        )

        # "Updated" for the store model compares against BSA_k (the
        # reference formula); the dirty stash tracks rows whose *live*
        # value actually changes.
        if bsa.shape[1] == 1:
            accf = acc.reshape(-1)
            statef = state.reshape(-1)
            bsaf = bsa.reshape(-1)
            updated = frontier[(accf | statef) != statef]
            current = np.take(bsaf, frontier)
            workspace.stash_rows(bsa, frontier[(current | accf) != current])
            bsaf[frontier] = current | accf
        else:
            updated = frontier[np.any((acc | state) != state, axis=1)]
            current = bsa[frontier]
            workspace.stash_rows(
                bsa, frontier[np.any((current | acc) != current, axis=1)]
            )
            bsa[frontier] |= acc

        early = int(np.count_nonzero(done & (probes < (ends - starts))))
        self._per_vertex_probes = probes
        # Early-termination scans emit the round-major stream directly;
        # full scans (MS-BFS) reconstruct it from per-vertex counts —
        # except on the native path, where the caller prices the stream
        # through the fused round-major coalescing kernel instead of
        # materializing it.
        if stream is None and native.effective(kernel, bsa.shape[1]):
            self._probe_parts = (indices, starts, probes)
        elif stream is None:
            stream = round_major_probes(indices, starts, probes)
        self._probed_neighbors = stream
        return int(probes.sum()), early, updated
