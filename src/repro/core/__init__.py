"""iBFS core: joint traversal, GroupBy, and bitwise optimization.

This package is the paper's primary contribution:

* :class:`~repro.core.joint.JointTraversal` — one kernel per group with
  a joint frontier queue and joint status array (section 4);
* :mod:`~repro.core.groupby` — outdegree-based grouping rules and the
  sharing-degree theory behind them (section 5);
* :class:`~repro.core.bitwise.BitwiseTraversal` — one-bit-per-instance
  status arrays with bitwise inspection, bitwise frontier
  identification, and bottom-up early termination (section 6);
* :class:`~repro.core.engine.IBFS` — the user-facing orchestrator that
  groups sources, runs each group, and aggregates results.
"""

from repro.core.result import ConcurrentResult, GroupStats
from repro.core.status_array import BitwiseStatusArray, lanes_for
from repro.core.sharing import (
    SharingObserver,
    sharing_degree,
    sharing_ratio,
    pairwise_sharing,
)
from repro.core.groupby import (
    GroupByConfig,
    group_sources,
    random_groups,
    auto_tune_q,
)
from repro.core.frontier import (
    FrontierBallots,
    generate_jfq,
    frontier_bits_top_down,
    frontier_bits_bottom_up,
)
from repro.core.joint import JointTraversal
from repro.core.bitwise import BitwiseTraversal
from repro.core.engine import IBFS, IBFSConfig
from repro.core.distributed import DistributedIBFS, DistributedResult
from repro.core.theory import (
    Lemma1Report,
    verify_lemma1,
    early_sharing_rank,
    early_sharing_predicts_speedup,
)

__all__ = [
    "ConcurrentResult",
    "GroupStats",
    "BitwiseStatusArray",
    "lanes_for",
    "SharingObserver",
    "sharing_degree",
    "sharing_ratio",
    "pairwise_sharing",
    "GroupByConfig",
    "group_sources",
    "random_groups",
    "auto_tune_q",
    "FrontierBallots",
    "generate_jfq",
    "frontier_bits_top_down",
    "frontier_bits_bottom_up",
    "JointTraversal",
    "BitwiseTraversal",
    "IBFS",
    "IBFSConfig",
    "DistributedIBFS",
    "DistributedResult",
    "Lemma1Report",
    "verify_lemma1",
    "early_sharing_rank",
    "early_sharing_predicts_speedup",
]
