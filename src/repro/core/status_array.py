"""Joint and bitwise status arrays (sections 4 and 6).

The Joint Status Array (JSA) stores one status byte per (vertex,
instance) pair with the instances of a vertex contiguous, so inspecting
a vertex for N instances touches ``N`` contiguous bytes.  The Bitwise
Status Array (BSA) packs the same information into one *bit* per
instance: "all bits of one vertex are kept in a single variable.  If
this vertex is visited, we set it as 1, otherwise 0".

Groups wider than 64 instances use multiple uint64 lanes per vertex
(the CUDA code's ``long4``-style vector types); all bit operations here
are lane-wise numpy ops, which is exactly the data-parallel semantics
of the GPU kernels.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import TraversalError

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def lanes_for(group_size: int) -> int:
    """uint64 lanes needed to hold one bit per instance."""
    if group_size <= 0:
        raise TraversalError("group size must be positive")
    return math.ceil(group_size / 64)


def instance_masks(group_size: int) -> np.ndarray:
    """``(group_size, lanes)`` matrix; row j holds instance j's bit."""
    lanes = lanes_for(group_size)
    masks = np.zeros((group_size, lanes), dtype=np.uint64)
    for j in range(group_size):
        masks[j, j // 64] = np.uint64(1) << np.uint64(j % 64)
    return masks


def combine_masks(masks: np.ndarray, instances) -> np.ndarray:
    """OR of the given instances' lane masks (their joint lane pattern).

    ``masks`` is the :func:`instance_masks` matrix; ``instances`` any
    index array/list.  An empty selection yields the all-zero word.
    """
    instances = np.asarray(instances, dtype=np.int64)
    if instances.size == 0:
        return np.zeros(masks.shape[1], dtype=np.uint64)
    return np.bitwise_or.reduce(masks[instances], axis=0)


def full_mask(group_size: int) -> np.ndarray:
    """Lane vector with the low ``group_size`` bits set (the 0xff...f
    early-termination comparand of Algorithm 1)."""
    lanes = lanes_for(group_size)
    mask = np.zeros(lanes, dtype=np.uint64)
    full, rem = divmod(group_size, 64)
    mask[:full] = ALL_ONES
    if rem:
        mask[full] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
    return mask


class BitwiseStatusArray:
    """BSA for one group: shape ``(num_vertices, lanes)`` of uint64.

    Bit ``j`` of vertex ``v`` is 1 iff instance ``j`` has visited ``v``.
    Bits are monotone (never cleared), which is what enables both the
    XOR-based frontier identification and bottom-up early termination
    that MS-BFS's per-level reset forfeits.
    """

    __slots__ = ("words", "group_size", "lanes")

    def __init__(self, num_vertices: int, group_size: int) -> None:
        self.group_size = group_size
        self.lanes = lanes_for(group_size)
        self.words = np.zeros((num_vertices, self.lanes), dtype=np.uint64)

    @property
    def num_vertices(self) -> int:
        return self.words.shape[0]

    @property
    def bytes_per_vertex(self) -> int:
        """Storage per vertex; the bitwise engine's 8x footprint win over
        the byte-wide JSA comes from comparing this to ``group_size``."""
        return self.lanes * 8

    def set_bit(self, vertex: int, instance: int) -> None:
        """Mark ``vertex`` visited for ``instance``."""
        if not 0 <= instance < self.group_size:
            raise TraversalError(
                f"instance {instance} out of range [0, {self.group_size})"
            )
        lane, bit = divmod(instance, 64)
        self.words[vertex, lane] |= np.uint64(1) << np.uint64(bit)

    def test_bit(self, vertex: int, instance: int) -> bool:
        """True when ``vertex`` is visited for ``instance``."""
        lane, bit = divmod(instance, 64)
        word = self.words[vertex, lane]
        return bool((word >> np.uint64(bit)) & np.uint64(1))

    def visited_matrix(self) -> np.ndarray:
        """Boolean ``(group_size, num_vertices)`` expansion (tests only)."""
        out = np.zeros((self.group_size, self.num_vertices), dtype=bool)
        for j in range(self.group_size):
            lane, bit = divmod(j, 64)
            out[j] = (self.words[:, lane] >> np.uint64(bit)) & np.uint64(1) != 0
        return out

    def snapshot(self) -> np.ndarray:
        """Copy of the raw words (the BSA_k kept at each level)."""
        return self.words.copy()

    def is_full(self, comparand: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-vertex truth of ``BSA[v] == 0xff...f`` (early termination)."""
        mask = full_mask(self.group_size) if comparand is None else comparand
        return np.all(self.words == mask, axis=1)
