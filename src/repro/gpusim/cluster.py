"""Multi-device cluster simulation for the scaling study (figure 17).

The paper's 112-GPU run needs no inter-GPU communication: "as long as
different GPUs work on independent BFSes, there is no need for inter-GPU
communication.  Therefore, the key challenge here is achieving workload
balance".  The cluster simulator therefore (a) assigns work units
(groups of BFS instances, each with a known simulated duration) to
devices with a pluggable scheduling policy and (b) reports the makespan
— "the longest time consumption of all the GPUs is reported".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.device import Device

#: A scheduling policy maps (durations, num_devices) -> device id per unit.
Scheduler = Callable[[Sequence[float], int], np.ndarray]


def _check_schedule_args(durations: Sequence[float], num_devices: int) -> None:
    """Shared validation: both degenerate inputs get the same typed error."""
    if num_devices <= 0:
        raise SimulationError("num_devices must be positive")
    if len(durations) == 0:
        raise SimulationError("durations must contain at least one work unit")


def schedule_round_robin(durations: Sequence[float], num_devices: int) -> np.ndarray:
    """Static round-robin assignment (what a simple MPI rank split does)."""
    _check_schedule_args(durations, num_devices)
    return np.arange(len(durations)) % num_devices


def schedule_lpt(durations: Sequence[float], num_devices: int) -> np.ndarray:
    """Longest-processing-time-first greedy assignment.

    Sorting units by decreasing duration and placing each on the
    least-loaded device is the classic 4/3-approximation for makespan;
    it models a runtime that knows per-group costs (estimable from the
    first levels, per Lemma 2).
    """
    _check_schedule_args(durations, num_devices)
    durations = np.asarray(durations, dtype=np.float64)
    assignment = np.zeros(durations.size, dtype=np.int64)
    loads = np.zeros(num_devices, dtype=np.float64)
    for unit in np.argsort(-durations, kind="stable"):
        device = int(np.argmin(loads))
        assignment[unit] = device
        loads[device] += durations[unit]
    return assignment


@dataclass
class ClusterResult:
    """Outcome of one cluster scheduling run."""

    num_devices: int
    makespan: float
    device_times: np.ndarray
    assignment: np.ndarray

    @property
    def total_work(self) -> float:
        return float(self.device_times.sum())

    @property
    def imbalance(self) -> float:
        """Makespan / mean device time; 1.0 is perfectly balanced."""
        mean = self.device_times.mean() if self.device_times.size else 0.0
        if mean == 0:
            return 1.0
        return self.makespan / mean


class Cluster:
    """A fleet of identical simulated devices (Stampede-style)."""

    def __init__(
        self,
        num_devices: int,
        config: Optional[DeviceConfig] = None,
        scheduler: Scheduler = schedule_lpt,
    ) -> None:
        if num_devices <= 0:
            raise SimulationError("a cluster needs at least one device")
        self.num_devices = num_devices
        self.config = config or KEPLER_K20
        self.scheduler = scheduler
        self.devices = [Device(self.config) for _ in range(num_devices)]

    def run(self, unit_durations: Sequence[float]) -> ClusterResult:
        """Schedule work units and return per-device times and makespan."""
        durations = np.asarray(unit_durations, dtype=np.float64)
        if durations.size == 0:
            return ClusterResult(
                self.num_devices,
                0.0,
                np.zeros(self.num_devices),
                np.empty(0, dtype=np.int64),
            )
        if np.any(durations < 0):
            raise SimulationError("unit durations must be non-negative")
        assignment = np.asarray(self.scheduler(durations, self.num_devices))
        device_times = np.zeros(self.num_devices, dtype=np.float64)
        np.add.at(device_times, assignment, durations)
        return ClusterResult(
            self.num_devices,
            float(device_times.max()),
            device_times,
            assignment,
        )

    def speedup_curve(
        self,
        unit_durations: Sequence[float],
        device_counts: Sequence[int],
    ) -> List[float]:
        """Speedup over a single device for each device count.

        This is figure 17's y-axis: near-linear while groups outnumber
        devices, then flattening as imbalance emerges.
        """
        base = Cluster(1, self.config, self.scheduler).run(unit_durations).makespan
        curve = []
        for count in device_counts:
            result = Cluster(count, self.config, self.scheduler).run(unit_durations)
            curve.append(base / result.makespan if result.makespan > 0 else 0.0)
        return curve
