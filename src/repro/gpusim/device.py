"""The simulated device: configuration + memory model + cost model.

A :class:`Device` is what BFS engines run "on".  It owns no mutable
traversal state — engines create their own
:class:`~repro.gpusim.counters.RunRecord`s — but it centralizes the
pieces every engine needs (transaction counting, pricing, and the
section 3 capacity rule for group sizes).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import CapacityError
from repro.graph.csr import CSRGraph
from repro.gpusim.config import DeviceConfig, KEPLER_K40
from repro.gpusim.memory import MemoryModel
from repro.gpusim.timing import CostModel


class Device:
    """One simulated GPU (or CPU) execution target."""

    def __init__(self, config: Optional[DeviceConfig] = None) -> None:
        self.config = config or KEPLER_K40
        self.memory = MemoryModel(self.config)
        self.cost = CostModel(self.config)

    def __repr__(self) -> str:
        return f"Device({self.config.name!r})"

    # ------------------------------------------------------------------
    # Capacity rule (section 3): N <= (M - S - |JFQ|) / |SA|
    # ------------------------------------------------------------------
    def max_group_size(
        self,
        graph: CSRGraph,
        status_bytes_per_instance: float = 1.0,
        requested: Optional[int] = None,
    ) -> int:
        """Largest group size N the device memory supports for ``graph``.

        ``status_bytes_per_instance`` is 1 for the byte-wide JSA and
        1/8 for the bitwise BSA.  When ``requested`` is given it is
        validated against the limit and returned.
        """
        graph_bytes = graph.memory_bytes()
        jfq_bytes = graph.num_vertices * 8
        available = self.config.global_memory_bytes - graph_bytes - jfq_bytes
        per_instance = status_bytes_per_instance * graph.num_vertices
        if available <= 0 or per_instance <= 0:
            limit = 0
        else:
            limit = int(available // max(per_instance, 1e-12))
        if requested is None:
            return limit
        if requested > limit:
            raise CapacityError(
                f"group size {requested} exceeds device capacity {limit} "
                f"for graph with {graph.num_vertices} vertices on "
                f"{self.config.name}"
            )
        return requested

    def fits(self, graph: CSRGraph) -> bool:
        """True when the graph's CSR arrays fit in device memory at all."""
        return graph.memory_bytes() < self.config.global_memory_bytes

    # ------------------------------------------------------------------
    # Thread accounting helpers
    # ------------------------------------------------------------------
    def warps_for(self, threads: int) -> int:
        """Warps needed to host ``threads`` threads."""
        return math.ceil(threads / self.config.warp_size)

    def ctas_for(self, threads: int) -> int:
        """CTAs (thread blocks) needed to host ``threads`` threads."""
        return math.ceil(threads / self.config.cta_size)

    def occupancy(self, kernel=None):
        """Occupancy report for a kernel configuration on this device.

        Defaults to the engines' configuration (CTA of ``cta_size``
        threads, 32 registers); see :mod:`repro.gpusim.occupancy`.
        """
        from repro.gpusim.occupancy import KernelConfig, occupancy

        if kernel is None:
            kernel = KernelConfig(self.config.cta_size, 32)
        return occupancy(self.config, kernel)
