"""Cost model converting counted work into simulated seconds.

BFS is memory-bound ("BFS is a memory-intensive workload"), so each
level's time is the maximum of its bandwidth term, its compute term,
its atomic-serialization term, and a latency floor, plus fixed level
overheads.  All of the paper's headline effects emerge from this model
applied to exactly-counted transactions:

* naive multi-kernel concurrency barely beats sequential execution
  because total memory traffic is unchanged and bandwidth is shared;
* joint traversal wins by removing duplicate adjacency loads and
  coalescing status accesses (fewer transactions);
* bitwise status arrays win again by shrinking statuses 8x and freeing
  threads (fewer transactions *and* fewer instructions);
* the CPU preset is slower because of lower random-access bandwidth,
  few hardware threads, atomic cost, and context-switch overhead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.counters import LevelRecord


class CostModel:
    """Prices :class:`LevelRecord` sequences for one device."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Single-kernel pricing
    # ------------------------------------------------------------------
    def level_time(self, level: LevelRecord, oversubscription: float = 1.0) -> float:
        """Simulated seconds for one level of one kernel.

        ``oversubscription`` > 1 scales the compute term when more
        threads are demanded than the device can host concurrently
        (the naive baseline's direction-switch problem).
        """
        cfg = self.config
        if oversubscription < 1.0:
            raise SimulationError("oversubscription factor must be >= 1")
        bandwidth_term = (
            level.transaction_total * cfg.transaction_bytes / cfg.memory_bandwidth
        )
        compute_term = (
            level.instructions / cfg.instruction_throughput * oversubscription
        )
        if not cfg.is_gpu and level.threads:
            # CPUs need enough software threads in flight to saturate the
            # memory system ("issuing a large number of CPU threads may
            # improve memory throughput", section 7); running fewer
            # threads than cores — MS-BFS's one-thread-per-instance
            # model with a small group — leaves bandwidth and ALUs idle.
            utilization = min(level.threads, cfg.cores) / cfg.cores
            bandwidth_term /= utilization
            compute_term /= utilization
        atomic_term = level.atomics / cfg.atomic_throughput
        latency_floor = cfg.memory_latency_s if level.transaction_total else 0.0
        busy = max(bandwidth_term, compute_term, atomic_term, latency_floor)
        overhead = cfg.level_sync_overhead_s
        if not cfg.is_gpu and level.threads:
            # CPUs pay to schedule software threads each level; GPUs have
            # zero-overhead context switches (section 7).
            resident = min(level.threads, cfg.max_resident_threads)
            overhead += cfg.context_switch_overhead_s * resident
        return busy + overhead

    def kernel_time(self, levels: Sequence[LevelRecord]) -> float:
        """Simulated seconds for one kernel running its levels serially.

        A single kernel whose level demands more threads than the device
        hosts simply executes in waves — that is ordinary operation and
        its work is already priced by the instruction count, so no
        oversubscription factor applies here (unlike the multi-kernel
        overlap path, where *concurrent* demand contends).
        """
        total = self.config.kernel_launch_overhead_s
        for level in levels:
            total += self.level_time(level)
        return total

    # ------------------------------------------------------------------
    # Multi-kernel (Hyper-Q) pricing for the naive baseline
    # ------------------------------------------------------------------
    def overlapped_time(self, kernels: Sequence[Sequence[LevelRecord]]) -> float:
        """Simulated seconds for independent kernels sharing the device.

        Hyper-Q lets up to ``hyperq_queues`` kernels make progress
        concurrently, which overlaps their launch overheads and latency
        stalls — but global-memory bandwidth and atomic units are shared,
        so bandwidth-bound work simply adds up.  Levels at the same rank
        also pool their thread demand: when the combined demand exceeds
        the device's resident-thread capacity (which happens at the
        direction-switching level of every instance at once), the excess
        serializes.  The result is the paper's observation that naive
        concurrency "takes approximately the same amount of time" as
        sequential execution and sometimes loses to it.
        """
        if not kernels:
            return 0.0
        cfg = self.config
        active = [list(levels) for levels in kernels if levels]
        queues = max(1, cfg.hyperq_queues)
        launch_waves = -(-len(kernels) // queues)
        total = cfg.kernel_launch_overhead_s * launch_waves
        max_rank = max((len(levels) for levels in active), default=0)
        for rank in range(max_rank):
            concurrent = [levels[rank] for levels in active if rank < len(levels)]
            if not concurrent:
                continue
            bandwidth_term = (
                sum(level.transaction_total for level in concurrent)
                * cfg.transaction_bytes
                / cfg.memory_bandwidth
            )
            demand = sum(level.threads for level in concurrent)
            factor = max(1.0, demand / cfg.max_resident_threads)
            compute_term = (
                sum(level.instructions for level in concurrent)
                / cfg.instruction_throughput
                * factor
            )
            atomic_term = (
                sum(level.atomics for level in concurrent) / cfg.atomic_throughput
            )
            latency_floor = cfg.memory_latency_s
            total += max(bandwidth_term, compute_term, atomic_term, latency_floor)
            total += cfg.level_sync_overhead_s
        return total

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def serial_time(self, runs: Iterable[Sequence[LevelRecord]]) -> float:
        """Total time of running the given kernels one after another."""
        return sum(self.kernel_time(levels) for levels in runs)


def teps(edges_traversed: int, seconds: float) -> float:
    """Traversed edges per second; 0 when no time elapsed."""
    if seconds <= 0:
        return 0.0
    return edges_traversed / seconds
