"""CUDA occupancy calculation for the simulated device.

Section 7 grounds the GPU/CPU comparison in hardware capacity: "GPUs
not only provide a large quantity of small cores coupled with huge
register files, e.g., 2,880 cores and 983,040 registers on NVIDIA
Kepler K40 GPUs, but also support zero-overhead context switch".  The
standard occupancy calculation determines how many CTAs of a kernel one
SM can host — the minimum over the warp-slot, register, shared-memory,
and CTA-slot constraints — and therefore how much latency-hiding
parallelism a kernel configuration achieves.

This module implements that calculation for :class:`DeviceConfig`
presets plus Kepler's fixed per-SM limits, so kernel configurations
(threads per CTA, registers per thread, shared-memory per CTA) can be
evaluated and the engines' default configuration justified by test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpusim.config import DeviceConfig


#: Kepler GK110 per-SM limits (CUDA compute capability 3.5).
MAX_WARPS_PER_SM = 64
MAX_CTAS_PER_SM = 16
REGISTERS_PER_SM = 65536
SHARED_MEMORY_PER_SM = 48 * 1024
REGISTER_ALLOCATION_UNIT = 256
MAX_REGISTERS_PER_THREAD = 255


@dataclass(frozen=True)
class KernelConfig:
    """Resource footprint of one kernel launch configuration."""

    threads_per_cta: int
    registers_per_thread: int = 32
    shared_memory_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_cta <= 0:
            raise SimulationError("threads_per_cta must be positive")
        if not 0 < self.registers_per_thread <= MAX_REGISTERS_PER_THREAD:
            raise SimulationError(
                f"registers_per_thread must be in (0, "
                f"{MAX_REGISTERS_PER_THREAD}]"
            )
        if self.shared_memory_per_cta < 0:
            raise SimulationError("shared_memory_per_cta must be >= 0")


@dataclass(frozen=True)
class OccupancyReport:
    """Outcome of the occupancy calculation for one kernel config."""

    ctas_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiting_factor: str
    resident_threads: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.occupancy:.0%} occupancy ({self.warps_per_sm} warps/SM, "
            f"limited by {self.limiting_factor})"
        )


def occupancy(config: DeviceConfig, kernel: KernelConfig) -> OccupancyReport:
    """Occupancy of ``kernel`` on ``config`` (GPU presets only)."""
    if not config.is_gpu:
        raise SimulationError("occupancy is defined for GPU devices only")
    warp_size = config.warp_size
    warps_per_cta = -(-kernel.threads_per_cta // warp_size)
    if warps_per_cta > MAX_WARPS_PER_SM:
        raise SimulationError(
            f"CTA of {kernel.threads_per_cta} threads exceeds the "
            f"{MAX_WARPS_PER_SM}-warp SM capacity"
        )

    limits = {"cta slots": MAX_CTAS_PER_SM}
    limits["warp slots"] = MAX_WARPS_PER_SM // warps_per_cta
    # Registers are allocated per warp in fixed-size units.
    regs_per_warp = _round_up(
        kernel.registers_per_thread * warp_size, REGISTER_ALLOCATION_UNIT
    )
    regs_per_cta = regs_per_warp * warps_per_cta
    limits["registers"] = REGISTERS_PER_SM // regs_per_cta if regs_per_cta else (
        MAX_CTAS_PER_SM
    )
    if kernel.shared_memory_per_cta > 0:
        limits["shared memory"] = (
            SHARED_MEMORY_PER_SM // kernel.shared_memory_per_cta
        )
    else:
        limits["shared memory"] = MAX_CTAS_PER_SM

    limiting_factor = min(limits, key=lambda k: limits[k])
    ctas = limits[limiting_factor]
    if ctas == 0:
        return OccupancyReport(0, 0, 0.0, limiting_factor, 0)
    warps = min(ctas * warps_per_cta, MAX_WARPS_PER_SM)
    return OccupancyReport(
        ctas_per_sm=ctas,
        warps_per_sm=warps,
        occupancy=warps / MAX_WARPS_PER_SM,
        limiting_factor=limiting_factor,
        resident_threads=warps * warp_size * config.num_sms,
    )


def best_cta_size(
    config: DeviceConfig,
    registers_per_thread: int = 32,
    shared_memory_per_cta: int = 0,
    candidates=(64, 128, 192, 256, 384, 512, 768, 1024),
) -> int:
    """The candidate CTA size with the highest occupancy (ties -> larger).

    The engines default to 256-thread CTAs ("typically 256 threads",
    section 6); this helper shows that choice is occupancy-optimal for
    the default register budget.
    """
    best = None
    best_key = (-1.0, -1)
    for size in candidates:
        report = occupancy(
            config,
            KernelConfig(size, registers_per_thread, shared_memory_per_cta),
        )
        key = (report.occupancy, size)
        if key > best_key:
            best_key = key
            best = size
    return best


def _round_up(value: int, unit: int) -> int:
    return -(-value // unit) * unit
