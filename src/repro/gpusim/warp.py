"""Warp-level primitive emulation.

iBFS relies on two CUDA warp intrinsics: ``__any()`` (does any thread in
the warp see a true predicate — used to decide whether a vertex enters
the joint frontier queue) and ``__ballot()`` (a bitmask of which threads
saw true — used to record which BFS instances share a frontier).  These
helpers reproduce both over numpy predicate matrices so engines can both
use and count them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def warp_any(predicates: np.ndarray) -> np.ndarray:
    """CUDA ``__any()`` across each row of a predicate matrix.

    ``predicates[v, j]`` is thread ``j``'s predicate while the warp scans
    vertex ``v``; the result is one boolean per vertex.
    """
    predicates = np.asarray(predicates, dtype=bool)
    if predicates.ndim == 1:
        return np.asarray([predicates.any()], dtype=bool)
    return predicates.any(axis=1)


def warp_ballot(predicates: np.ndarray) -> np.ndarray:
    """CUDA ``__ballot()`` across each row: bit ``j`` of the result is
    thread ``j``'s predicate.

    Rows wider than 64 threads are not representable in one word and
    raise :class:`~repro.errors.SimulationError`; callers split wider
    groups into 64-bit lanes (as the bitwise status array does).
    """
    predicates = np.asarray(predicates, dtype=bool)
    if predicates.ndim == 1:
        predicates = predicates[np.newaxis, :]
    width = predicates.shape[1]
    if width > 64:
        raise SimulationError(
            f"ballot width {width} exceeds 64; split into lanes"
        )
    weights = (np.uint64(1) << np.arange(width, dtype=np.uint64))
    return (predicates.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


_POPCOUNT_TABLE = np.asarray(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (CUDA ``__popc``).

    Used to count how many instances share a frontier from its ballot.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.view(np.uint8).reshape(words.shape + (8,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1).astype(np.int64)
