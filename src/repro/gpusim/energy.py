"""Energy accounting for simulated runs (Green Graph500-style).

The paper generates its synthetic graphs with the Graph500 tools and
cites the Green Graph500 list [45], whose metric is traversed edges per
second *per watt*.  This module prices a run's energy from the same
counters the cost model uses: DRAM traffic dominates BFS energy, with
smaller per-instruction and per-atomic terms and a static (leakage +
idle) power draw over the simulated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.counters import ProfilerCounters


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs for one device.

    Defaults approximate a 28 nm Kepler-class part: ~20 pJ/bit for DRAM
    access (including the interface), ~25 pJ per scalar instruction
    (datapath + scheduling), 10x that per global atomic, and a 100 W
    static draw against a 235 W TDP.
    """

    dram_joules_per_byte: float = 20e-12 * 8
    instruction_joules: float = 25e-12
    atomic_joules: float = 250e-12
    static_watts: float = 100.0

    def __post_init__(self) -> None:
        if min(
            self.dram_joules_per_byte,
            self.instruction_joules,
            self.atomic_joules,
            self.static_watts,
        ) < 0:
            raise SimulationError("energy parameters must be non-negative")

    def dynamic_energy(
        self, counters: ProfilerCounters, config: DeviceConfig
    ) -> float:
        """Joules consumed by memory traffic, instructions, and atomics."""
        bytes_moved = (
            counters.global_load_transactions + counters.global_store_transactions
        ) * config.transaction_bytes
        return (
            bytes_moved * self.dram_joules_per_byte
            + counters.instructions * self.instruction_joules
            + counters.atomic_operations * self.atomic_joules
        )

    def total_energy(
        self,
        counters: ProfilerCounters,
        config: DeviceConfig,
        seconds: float,
    ) -> float:
        """Dynamic energy plus static draw over the simulated runtime."""
        if seconds < 0:
            raise SimulationError("seconds must be non-negative")
        return self.dynamic_energy(counters, config) + self.static_watts * seconds

    def teps_per_watt(
        self,
        counters: ProfilerCounters,
        config: DeviceConfig,
        seconds: float,
    ) -> float:
        """The Green Graph500 metric: TEPS divided by average power."""
        energy = self.total_energy(counters, config, seconds)
        if energy <= 0 or seconds <= 0:
            return 0.0
        teps = counters.edges_traversed / seconds
        watts = energy / seconds
        return teps / watts


def energy_report(result, config: DeviceConfig, model: "EnergyModel" = None):
    """Energy summary dict for a :class:`ConcurrentResult`-like object
    (anything with ``counters`` and ``seconds``)."""
    model = model or EnergyModel()
    dynamic = model.dynamic_energy(result.counters, config)
    total = model.total_energy(result.counters, config, result.seconds)
    return {
        "dynamic_joules": dynamic,
        "static_joules": total - dynamic,
        "total_joules": total,
        "average_watts": total / result.seconds if result.seconds else 0.0,
        "teps_per_watt": model.teps_per_watt(
            result.counters, config, result.seconds
        ),
    }
