"""GPU execution-model simulator.

The paper's gains are memory-traffic gains measured on NVIDIA Kepler
GPUs (K40/K20) with the NVIDIA profiler: coalesced global-memory
transactions, shared-memory caching, warp votes, atomic operations, and
Hyper-Q multi-kernel overlap.  This subpackage provides a deterministic
model of exactly those mechanisms:

* :class:`DeviceConfig` — hardware parameters (K40/K20/CPU presets);
* :class:`ProfilerCounters` — the counters the paper's figures report;
* :class:`MemoryModel` — exact coalesced-transaction counting from the
  addresses each simulated warp touches;
* :class:`CostModel` / :class:`Device` — converts counted work into
  simulated seconds (bandwidth-bound, latency floors, launch overheads);
* :class:`Cluster` — multi-device scheduling for the scaling study.

No wall-clock time enters any simulated measurement.
"""

from repro.gpusim.config import DeviceConfig, KEPLER_K40, KEPLER_K20, XEON_CPU
from repro.gpusim.counters import ProfilerCounters, LevelRecord
from repro.gpusim.memory import MemoryModel
from repro.gpusim.warp import warp_any, warp_ballot, popcount
from repro.gpusim.timing import CostModel
from repro.gpusim.device import Device
from repro.gpusim.cluster import Cluster, schedule_lpt, schedule_round_robin
from repro.gpusim.trace import (
    TRACE_FIELDS,
    record_to_rows,
    record_to_json,
    summarize_record,
    validate_rows,
)
from repro.gpusim.energy import EnergyModel, energy_report
from repro.gpusim.occupancy import KernelConfig, OccupancyReport, occupancy, best_cta_size

__all__ = [
    "DeviceConfig",
    "KEPLER_K40",
    "KEPLER_K20",
    "XEON_CPU",
    "ProfilerCounters",
    "LevelRecord",
    "MemoryModel",
    "warp_any",
    "warp_ballot",
    "popcount",
    "CostModel",
    "Device",
    "Cluster",
    "schedule_lpt",
    "schedule_round_robin",
    "TRACE_FIELDS",
    "record_to_rows",
    "record_to_json",
    "summarize_record",
    "validate_rows",
    "EnergyModel",
    "energy_report",
    "KernelConfig",
    "OccupancyReport",
    "occupancy",
    "best_cta_size",
]
