"""Run-record export: per-level execution traces as plain data.

The NVIDIA profiler that figures 18, 19, and 21 rely on exposes
per-kernel counter timelines; :func:`record_to_rows` and
:func:`record_to_json` provide the analogous export for simulated runs,
so results can be inspected, diffed, or post-processed without touching
engine internals.

The export schema is *fail closed*: :data:`TRACE_FIELDS` is the one
authoritative column list, and :func:`record_to_json` refuses rows
whose keys drift from it (:class:`~repro.errors.TraceSchemaError`)
rather than silently emitting a new shape downstream consumers (the
``repro.obs.export`` span adapter, diff tooling) never agreed to.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import TraceSchemaError
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.timing import CostModel

#: Column order of the per-level rows.
TRACE_FIELDS = (
    "depth",
    "direction",
    "frontier_size",
    "threads",
    "load_transactions",
    "store_transactions",
    "atomics",
    "instructions",
    "seconds",
)


def level_to_row(level: LevelRecord, cost: Optional[CostModel] = None) -> Dict:
    """One level as a flat dict (``seconds`` requires a cost model)."""
    return {
        "depth": level.depth,
        "direction": level.direction,
        "frontier_size": level.frontier_size,
        "threads": level.threads,
        "load_transactions": level.load_transactions,
        "store_transactions": level.store_transactions,
        "atomics": level.atomics,
        "instructions": level.instructions,
        "seconds": cost.level_time(level) if cost else None,
    }


def record_to_rows(
    record: RunRecord, cost: Optional[CostModel] = None
) -> List[Dict]:
    """All levels of a run as flat dicts, in execution order."""
    return [level_to_row(level, cost) for level in record.levels]


def validate_rows(rows: List[Dict]) -> List[Dict]:
    """Check every row against :data:`TRACE_FIELDS`, fail closed.

    Raises :class:`~repro.errors.TraceSchemaError` naming the offending
    row and fields if any row carries unknown fields or misses declared
    ones.  Returns the rows unchanged so callers can validate inline.
    """
    expected = set(TRACE_FIELDS)
    for index, row in enumerate(rows):
        keys = set(row)
        unknown = keys - expected
        if unknown:
            raise TraceSchemaError(
                f"trace row {index} has fields not in TRACE_FIELDS: "
                f"{sorted(unknown)}"
            )
        missing = expected - keys
        if missing:
            raise TraceSchemaError(
                f"trace row {index} is missing declared fields: "
                f"{sorted(missing)}"
            )
    return rows


def record_to_json(
    record: RunRecord, cost: Optional[CostModel] = None, indent: int = 2
) -> str:
    """Serialize a run record (levels + final counters) to JSON.

    Rows are validated against :data:`TRACE_FIELDS` before
    serialization — schema drift raises
    :class:`~repro.errors.TraceSchemaError` instead of shipping an
    undeclared format.
    """
    payload = {
        "levels": validate_rows(record_to_rows(record, cost)),
        "counters": {
            "global_load_transactions": record.counters.global_load_transactions,
            "global_store_transactions": record.counters.global_store_transactions,
            "global_load_requests": record.counters.global_load_requests,
            "global_store_requests": record.counters.global_store_requests,
            "atomic_operations": record.counters.atomic_operations,
            "inspections": record.counters.inspections,
            "bottom_up_inspections": record.counters.bottom_up_inspections,
            "edges_traversed": record.counters.edges_traversed,
            "frontier_enqueues": record.counters.frontier_enqueues,
            "early_terminations": record.counters.early_terminations,
            "warp_votes": record.counters.warp_votes,
            "levels": record.counters.levels,
            "kernel_launches": record.counters.kernel_launches,
        },
    }
    return json.dumps(payload, indent=indent)


def summarize_record(record: RunRecord, cost: CostModel) -> Dict[str, float]:
    """Aggregate trace summary: totals plus per-direction splits."""
    td_levels = [lv for lv in record.levels if lv.direction == "td"]
    bu_levels = [lv for lv in record.levels if lv.direction == "bu"]
    return {
        "levels": len(record.levels),
        "td_levels": len(td_levels),
        "bu_levels": len(bu_levels),
        "total_transactions": record.total_transactions,
        "td_transactions": sum(lv.transaction_total for lv in td_levels),
        "bu_transactions": sum(lv.transaction_total for lv in bu_levels),
        "seconds": cost.kernel_time(record.levels),
        "peak_frontier": max(
            (lv.frontier_size for lv in record.levels), default=0
        ),
        "peak_threads": max((lv.threads for lv in record.levels), default=0),
    }
