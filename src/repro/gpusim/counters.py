"""Profiler counters mirroring the quantities the paper's figures report.

Figure 18 reports global *store* transactions during frontier-queue
generation, figure 19 global *load transactions per request*, figure 21
total load transactions, and figure 11 bottom-up inspection counts.  A
:class:`ProfilerCounters` instance accumulates all of these; engines
additionally emit one :class:`LevelRecord` per traversal level so the
cost model can price levels individually (bandwidth vs latency bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List


@dataclass
class ProfilerCounters:
    """Cumulative simulated hardware counters for one run."""

    #: Coalesced global-memory load transactions (128 B each on Kepler).
    global_load_transactions: int = 0
    #: Coalesced global-memory store transactions.
    global_store_transactions: int = 0
    #: Warp-level load requests (one per warp memory instruction).
    global_load_requests: int = 0
    #: Warp-level store requests.
    global_store_requests: int = 0
    #: Global atomic operations (post shared-memory merging).
    atomic_operations: int = 0
    #: Shared-memory (cache) accesses that avoided global traffic.
    shared_memory_accesses: int = 0
    #: Warp vote instructions (__any / __ballot).
    warp_votes: int = 0
    #: Kernel launches.
    kernel_launches: int = 0
    #: BFS levels executed (across all instances/groups).
    levels: int = 0
    #: Status inspections performed (the paper's workload measure).
    inspections: int = 0
    #: Inspections performed during bottom-up levels only (figure 11).
    bottom_up_inspections: int = 0
    #: Directed edges traversed (TEPS numerator).
    edges_traversed: int = 0
    #: Frontier-queue enqueue operations.
    frontier_enqueues: int = 0
    #: Bottom-up scans cut short by early termination.
    early_terminations: int = 0
    #: Scalar instructions issued (cost-model compute term).
    instructions: int = 0

    def merge(self, other: "ProfilerCounters") -> None:
        """Add another run's counters into this one, in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "ProfilerCounters") -> "ProfilerCounters":
        merged = ProfilerCounters()
        merged.merge(self)
        merged.merge(other)
        return merged

    @property
    def loads_per_request(self) -> float:
        """Global load transactions per warp request (figure 19's metric);
        1.0 means perfectly coalesced."""
        if self.global_load_requests == 0:
            return 0.0
        return self.global_load_transactions / self.global_load_requests

    @property
    def stores_per_request(self) -> float:
        """Global store transactions per warp store request."""
        if self.global_store_requests == 0:
            return 0.0
        return self.global_store_transactions / self.global_store_requests

    def snapshot(self) -> "ProfilerCounters":
        """Independent copy of the current counter values."""
        copy = ProfilerCounters()
        copy.merge(self)
        return copy


@dataclass
class LevelRecord:
    """Work performed in one BFS level of one kernel.

    The cost model prices each level as
    ``overhead + max(bandwidth_term, compute_term, atomic_term,
    latency_floor)`` and the naive multi-kernel baseline additionally
    aggregates concurrent levels' ``threads`` demand to model
    oversubscription at direction switches.
    """

    #: Level depth (k).
    depth: int
    #: "td" or "bu".
    direction: str
    #: Global load transactions issued by this level.
    load_transactions: int = 0
    #: Global store transactions issued by this level.
    store_transactions: int = 0
    #: Global atomics issued by this level.
    atomics: int = 0
    #: Scalar instructions issued by this level.
    instructions: int = 0
    #: Peak concurrent thread demand of this level.
    threads: int = 0
    #: Frontier count of this level (diagnostics / sharing stats).
    frontier_size: int = 0

    @property
    def transaction_total(self) -> int:
        return self.load_transactions + self.store_transactions


@dataclass
class RunRecord:
    """Per-level records plus final counters for one engine run."""

    levels: List[LevelRecord] = field(default_factory=list)
    counters: ProfilerCounters = field(default_factory=ProfilerCounters)

    def append(self, record: LevelRecord) -> None:
        self.levels.append(record)

    @property
    def total_transactions(self) -> int:
        return sum(level.transaction_total for level in self.levels)
