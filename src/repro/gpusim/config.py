"""Simulated device configurations.

Presets model the hardware the paper evaluated on: NVIDIA Kepler K40
(local cluster) and K20 (Stampede), plus the Xeon E5-2683 CPU used for
the CPU-iBFS and MS-BFS comparisons in sections 7 and 8.6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError


@dataclass(frozen=True)
class DeviceConfig:
    """Hardware parameters of one simulated device.

    Attributes
    ----------
    name:
        Human-readable device name.
    is_gpu:
        Distinguishes the SIMT cost model from the CPU cost model
        (context-switch overhead, no zero-cost warp scheduling).
    num_sms:
        Streaming multiprocessors (CPU: sockets*cores treated alike).
    cores:
        Total scalar cores (K40: 2880).
    clock_hz:
        Core clock.
    warp_size:
        Threads per warp (SIMT width); CPUs use 1.
    cta_size:
        Threads per cooperative thread array (block); the paper's
        shared-memory merge operates at this granularity.
    max_resident_threads:
        Hardware thread slots; exceeding this serializes work and is the
        source of the naive implementation's direction-switch collapse.
    global_memory_bytes:
        Device memory capacity; bounds the group size N (section 3).
    memory_bandwidth:
        Global-memory bandwidth in bytes/second.
    memory_latency_s:
        Latency floor of one dependent global access; small frontiers
        pay this instead of the bandwidth term.
    transaction_bytes:
        Size of one coalesced global-memory transaction (128 B on
        Kepler; "one global memory transaction typically fetches 16
        contiguous data entries" of 8 B each).
    instruction_throughput:
        Scalar instructions retired per second across the device.
    atomic_throughput:
        Global atomic operations per second.
    kernel_launch_overhead_s:
        Host-side cost of launching one kernel.
    level_sync_overhead_s:
        Cost of one device-wide synchronization (per BFS level).
    hyperq_queues:
        Concurrent kernel queues (Hyper-Q); bounds naive overlap.
    context_switch_overhead_s:
        CPU-only: cost of scheduling one software thread; GPUs have
        zero-overhead context switches (section 7).
    """

    name: str
    is_gpu: bool
    num_sms: int
    cores: int
    clock_hz: float
    warp_size: int
    cta_size: int
    max_resident_threads: int
    global_memory_bytes: int
    memory_bandwidth: float
    memory_latency_s: float
    transaction_bytes: int
    instruction_throughput: float
    atomic_throughput: float
    kernel_launch_overhead_s: float
    level_sync_overhead_s: float
    hyperq_queues: int
    context_switch_overhead_s: float

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.transaction_bytes <= 0:
            raise SimulationError("warp_size and transaction_bytes must be positive")
        if self.memory_bandwidth <= 0 or self.clock_hz <= 0:
            raise SimulationError("bandwidth and clock must be positive")
        if self.max_resident_threads <= 0:
            raise SimulationError("max_resident_threads must be positive")

    @property
    def entries_per_transaction(self) -> int:
        """8-byte vertex-id entries fetched by one coalesced transaction."""
        return self.transaction_bytes // 8

    def with_memory(self, global_memory_bytes: int) -> "DeviceConfig":
        """Copy of this config with a different memory capacity (used by
        capacity-rule tests)."""
        return replace(self, global_memory_bytes=global_memory_bytes)


#: NVIDIA Kepler K40: 15 SMs x 192 cores, 745 MHz, 12 GB, 288 GB/s.
KEPLER_K40 = DeviceConfig(
    name="NVIDIA Kepler K40",
    is_gpu=True,
    num_sms=15,
    cores=2880,
    clock_hz=745e6,
    warp_size=32,
    cta_size=256,
    max_resident_threads=15 * 2048,
    global_memory_bytes=12 * 1024**3,
    memory_bandwidth=288e9,
    memory_latency_s=1e-7,
    transaction_bytes=128,
    instruction_throughput=2880 * 745e6,
    atomic_throughput=120e9,
    kernel_launch_overhead_s=1e-7,
    level_sync_overhead_s=4e-8,
    hyperq_queues=32,
    context_switch_overhead_s=0.0,
)

#: NVIDIA Kepler K20 (Stampede): 13 SMs x 192 cores, 706 MHz, 5 GB, 208 GB/s.
KEPLER_K20 = DeviceConfig(
    name="NVIDIA Kepler K20",
    is_gpu=True,
    num_sms=13,
    cores=2496,
    clock_hz=706e6,
    warp_size=32,
    cta_size=256,
    max_resident_threads=13 * 2048,
    global_memory_bytes=5 * 1024**3,
    memory_bandwidth=208e9,
    memory_latency_s=1e-7,
    transaction_bytes=128,
    instruction_throughput=2496 * 706e6,
    atomic_throughput=100e9,
    kernel_launch_overhead_s=1e-7,
    level_sync_overhead_s=4e-8,
    hyperq_queues=32,
    context_switch_overhead_s=0.0,
)

#: Intel Xeon E5-2683-class host running 64 software threads: far fewer
#: hardware threads, lower random-access bandwidth, and a real context
#: switch cost -- the differences section 7 calls out.
XEON_CPU = DeviceConfig(
    name="Intel Xeon E5-2683",
    is_gpu=False,
    num_sms=2,
    cores=28,
    clock_hz=2.0e9,
    warp_size=1,
    cta_size=1,
    max_resident_threads=56,
    global_memory_bytes=256 * 1024**3,
    memory_bandwidth=68e9,
    memory_latency_s=90e-9,
    transaction_bytes=64,
    instruction_throughput=28 * 2.0e9,
    atomic_throughput=1.2e9,
    kernel_launch_overhead_s=0.0,
    level_sync_overhead_s=1e-7,
    hyperq_queues=1,
    context_switch_overhead_s=6e-8,
)
