"""Coalesced global-memory transaction counting.

On Kepler, one global-memory transaction moves 128 contiguous bytes; a
warp's 32 access addresses are coalesced into as few transactions as the
number of distinct 128-byte segments they touch.  The paper's joint
status array exploits exactly this: "one global memory transaction
typically fetches 16 contiguous data entries from an array and only
continuous threads can share the retrieved data".

:class:`MemoryModel` counts transactions exactly from the element
indices each warp accesses, fully vectorized so engines can hand it the
complete per-level access stream.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

import repro.native as native
from repro.errors import SimulationError
from repro.gpusim.config import DeviceConfig


class MemoryModel:
    """Transaction accounting for one simulated device."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Streaming (fully coalesced) accesses
    # ------------------------------------------------------------------
    def stream_transactions(self, num_bytes: int) -> int:
        """Transactions for a contiguous sweep of ``num_bytes`` bytes.

        Used for frontier-queue reads/writes and status-array scans,
        which contiguous threads access in order.
        """
        if num_bytes < 0:
            raise SimulationError("num_bytes must be non-negative")
        return math.ceil(num_bytes / self.config.transaction_bytes)

    def adjacency_transactions(self, degrees: np.ndarray, entry_bytes: int = 8) -> int:
        """Transactions to load each listed adjacency list once.

        Each frontier's neighbor list is contiguous in CSR, so loading a
        list of degree ``d`` costs ``ceil(d * entry_bytes / 128)``
        transactions (at least one when ``d > 0``).
        """
        if degrees.size == 0:
            return 0
        per_line = self.config.transaction_bytes // entry_bytes
        return int(np.sum((degrees + per_line - 1) // per_line))

    # ------------------------------------------------------------------
    # Warp-coalesced scattered accesses
    # ------------------------------------------------------------------
    def coalesced_transactions(
        self,
        element_indices: np.ndarray,
        element_bytes: int,
    ) -> Tuple[int, int]:
        """Transactions and warp requests for a scattered access stream.

        ``element_indices[i]`` is the array index accessed by simulated
        thread ``i``; threads are grouped into warps of
        ``config.warp_size`` in order.  Within a warp, accesses landing
        in the same ``transaction_bytes`` segment coalesce into one
        transaction.

        Returns
        -------
        (transactions, requests):
            ``requests`` is the number of warp-level memory instructions
            (one per warp), the denominator of figure 19's
            transactions-per-request metric.
        """
        indices = np.asarray(element_indices)
        if indices.size == 0:
            return 0, 0
        if element_bytes <= 0:
            raise SimulationError("element_bytes must be positive")
        warp = self.config.warp_size
        if warp == 1:
            # CPU model: every access is its own transaction-sized fetch.
            return int(indices.size), int(indices.size)
        if warp <= 64 and native.enabled():
            # Same distinct-lines-per-warp count without materializing,
            # padding, and sorting the line grid (this is a per-level
            # hot path: the full neighbor/probe address streams).
            return native.coalesced_transactions(
                indices, element_bytes, self.config.transaction_bytes, warp
            )
        lines = (indices.astype(np.int64) * element_bytes) // self.config.transaction_bytes
        requests = math.ceil(lines.size / warp)
        pad = requests * warp - lines.size
        if pad:
            lines = np.concatenate([lines, np.full(pad, -1, dtype=np.int64)])
        grid = np.sort(lines.reshape(requests, warp), axis=1)
        distinct = np.ones_like(grid, dtype=bool)
        distinct[:, 1:] = grid[:, 1:] != grid[:, :-1]
        distinct &= grid >= 0
        return int(distinct.sum()), requests

    def scattered_transactions(self, count: int) -> int:
        """Worst-case scattered accesses: one transaction per access.

        Used when addresses are not materialized (e.g. modeling private
        per-instance status arrays whose accesses never coalesce).
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        return count

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def status_group_transactions(self, num_vertices_touched: int, status_bytes: int) -> int:
        """Transactions when N contiguous per-instance statuses of one
        vertex are accessed by N contiguous threads (joint layout).

        Each touched vertex costs ``ceil(status_bytes / 128)``
        transactions; ``status_bytes`` is ``N`` for the byte-wide JSA and
        ``ceil(N / 8)`` for the bitwise BSA.
        """
        per_vertex = math.ceil(status_bytes / self.config.transaction_bytes)
        return num_vertices_touched * max(per_vertex, 1)

    def capacity_group_size(
        self,
        graph_bytes: int,
        status_bytes_per_vertex: int,
        num_vertices: int,
        jfq_bytes: int,
    ) -> int:
        """Maximum group size N from the section 3 capacity rule:
        ``N <= (M - S - |JFQ|) / |SA|``.
        """
        available = self.config.global_memory_bytes - graph_bytes - jfq_bytes
        per_instance = status_bytes_per_vertex * num_vertices
        if per_instance <= 0:
            raise SimulationError("per-instance status storage must be positive")
        if available <= 0:
            return 0
        return int(available // per_instance)
