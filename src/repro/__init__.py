"""repro — iBFS: Concurrent Breadth-First Search on GPUs (SIGMOD 2016).

A full reimplementation of Liu, Huang & Hu's iBFS system on a
deterministic GPU execution-model simulator:

* :mod:`repro.graph` — CSR graphs, Graph500/R-MAT/uniform generators,
  I/O, and the paper's 13-graph benchmark suite at laptop scale;
* :mod:`repro.gpusim` — SIMT simulator: coalesced-transaction counting,
  warp votes, Hyper-Q overlap, device/cluster cost models;
* :mod:`repro.bfs` — direction-optimizing single-source BFS plus the
  sequential and naive concurrent baselines;
* :mod:`repro.core` — iBFS itself: joint traversal, GroupBy, and the
  bitwise status array with bottom-up early termination;
* :mod:`repro.plan` — the unified per-level traversal planner: typed
  per-level decisions from pluggable policies (heuristic, fixed,
  adaptive), recorded as replayable :class:`~repro.plan.RunPlan`\\ s;
* :mod:`repro.baselines` — MS-BFS, B40C, SpMM-BC, CPU-iBFS comparators;
* :mod:`repro.apps` — reachability indexing, closeness and betweenness
  centrality on top of concurrent BFS;
* :mod:`repro.service` — online serving layer: dynamic micro-batching
  of request streams into GroupBy-formed groups, LRU result caching,
  admission control/backpressure, and serving metrics;
* :mod:`repro.exec` — real multi-process execution backend: BFS groups
  run concurrently on worker processes over a shared-memory graph, with
  work-stealing dispatch and worker fault tolerance, bit-identical to
  the serial engine;
* :mod:`repro.dist` — partitioned distributed traversal: the graph is
  split into 1D vertex-range or 2D edge-block partitions and traversed
  level-synchronously with a dense/sparse frontier exchange, for graphs
  too big for any single device — bit-identical to the serial engine.

Quickstart
----------
>>> from repro import kronecker, IBFS, IBFSConfig
>>> g = kronecker(scale=10, edge_factor=16, seed=1)
>>> engine = IBFS(g, IBFSConfig(group_size=64))
>>> result = engine.run(sources=range(64))
>>> result.teps > 0
True
"""

from repro.errors import (
    ReproError,
    GraphError,
    GraphFormatError,
    SimulationError,
    CapacityError,
    TraversalError,
    GroupingError,
    ServiceError,
    QueueFullError,
    RequestTimeoutError,
    RequestFailedError,
    ExecutorError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.graph import (
    CSRGraph,
    WeightedCSRGraph,
    with_random_weights,
    with_unit_weights,
    from_edges,
    from_adjacency,
    kronecker,
    rmat,
    uniform_random,
    benchmark_graph,
    benchmark_suite,
    BENCHMARK_NAMES,
)
from repro.gpusim import (
    Device,
    DeviceConfig,
    Cluster,
    KEPLER_K40,
    KEPLER_K20,
    XEON_CPU,
)
from repro.bfs import (
    reference_bfs,
    reference_bfs_multi,
    validate_depths,
    dijkstra,
    bellman_ford,
    DeltaStepping,
    SingleBFS,
    SequentialConcurrentBFS,
    NaiveConcurrentBFS,
    DirectionPolicy,
)
from repro.core import (
    IBFS,
    IBFSConfig,
    JointTraversal,
    BitwiseTraversal,
    ConcurrentResult,
    GroupByConfig,
    group_sources,
    random_groups,
)
from repro.plan import (
    AdaptivePolicy,
    FixedPolicy,
    HeuristicPolicy,
    LevelDecision,
    POLICY_NAMES,
    RecordedPolicy,
    RunPlan,
    make_policy,
)
from repro.baselines import MSBFS, B40C, SpMMBC, CPUiBFS
from repro.service import (
    BFSServer,
    InProcessClient,
    ServingConfig,
    Request,
    Response,
    WorkloadConfig,
    run_closed_loop,
    compare_serving,
)
from repro.exec import (
    ExecConfig,
    ExecStats,
    FaultPlan,
    FaultPolicy,
    GroupExecutor,
)
from repro.dist import (
    CommCostModel,
    DistConfig,
    DistFaultPlan,
    DistStats,
    ExchangePolicy,
    GraphPartitioner,
    PartitionedEngine,
)
from repro.apps import (
    build_reachability_index,
    closeness_centrality,
    betweenness_centrality,
    apsp_unweighted,
    floyd_warshall,
    connected_components_concurrent,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "SimulationError",
    "CapacityError",
    "TraversalError",
    "GroupingError",
    "ServiceError",
    "QueueFullError",
    "RequestTimeoutError",
    "RequestFailedError",
    "ExecutorError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "CSRGraph",
    "WeightedCSRGraph",
    "with_random_weights",
    "with_unit_weights",
    "from_edges",
    "from_adjacency",
    "kronecker",
    "rmat",
    "uniform_random",
    "benchmark_graph",
    "benchmark_suite",
    "BENCHMARK_NAMES",
    "Device",
    "DeviceConfig",
    "Cluster",
    "KEPLER_K40",
    "KEPLER_K20",
    "XEON_CPU",
    "reference_bfs",
    "reference_bfs_multi",
    "validate_depths",
    "dijkstra",
    "bellman_ford",
    "DeltaStepping",
    "SingleBFS",
    "SequentialConcurrentBFS",
    "NaiveConcurrentBFS",
    "DirectionPolicy",
    "IBFS",
    "IBFSConfig",
    "JointTraversal",
    "BitwiseTraversal",
    "ConcurrentResult",
    "GroupByConfig",
    "group_sources",
    "random_groups",
    "AdaptivePolicy",
    "FixedPolicy",
    "HeuristicPolicy",
    "LevelDecision",
    "POLICY_NAMES",
    "RecordedPolicy",
    "RunPlan",
    "make_policy",
    "MSBFS",
    "B40C",
    "SpMMBC",
    "CPUiBFS",
    "build_reachability_index",
    "closeness_centrality",
    "betweenness_centrality",
    "apsp_unweighted",
    "floyd_warshall",
    "connected_components_concurrent",
    "BFSServer",
    "InProcessClient",
    "ServingConfig",
    "Request",
    "Response",
    "WorkloadConfig",
    "run_closed_loop",
    "compare_serving",
    "ExecConfig",
    "ExecStats",
    "FaultPlan",
    "FaultPolicy",
    "GroupExecutor",
    "CommCostModel",
    "DistConfig",
    "DistFaultPlan",
    "DistStats",
    "ExchangePolicy",
    "GraphPartitioner",
    "PartitionedEngine",
    "__version__",
]
