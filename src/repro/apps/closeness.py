"""Closeness centrality via concurrent BFS.

Closeness of a vertex ``v`` is the reciprocal of its mean shortest-path
distance to the vertices it can reach.  We use the Wasserman–Faust
variant, which scales by the reached fraction so scores stay comparable
on disconnected graphs:

    C(v) = ((r - 1) / (n - 1)) * ((r - 1) / sum_of_depths)

where ``r`` is the number of vertices reachable from ``v``.  Computing
it for many vertices is exactly a concurrent-BFS workload (section 1
cites closeness centrality as an iBFS application).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.core.result import ConcurrentResult


class _ConcurrentEngine(Protocol):
    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult: ...


def closeness_centrality(
    graph: CSRGraph,
    engine: _ConcurrentEngine,
    sources: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Closeness centrality of the given vertices (all by default)."""
    if sources is None:
        sources = range(graph.num_vertices)
    result = engine.run(sources, store_depths=True)
    n = graph.num_vertices
    scores: Dict[int, float] = {}
    for source in result.sources:
        depths = result.depth_row(source)
        reached_mask = depths > 0
        reached = int(np.count_nonzero(reached_mask))
        total = int(depths[reached_mask].sum())
        if reached == 0 or total == 0 or n <= 1:
            scores[int(source)] = 0.0
            continue
        scores[int(source)] = (reached / (n - 1)) * (reached / total)
    return scores
