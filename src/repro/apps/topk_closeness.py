"""Top-k closeness centrality with level-bound pruning.

The paper cites "efficient top-k closeness centrality search" [13] as
an iBFS application.  The classic trick: process candidates in
descending degree order, maintain the current k-th best score, and
*prune* a candidate as soon as an upper bound on its closeness —
computable after each partial BFS level — falls below that threshold.
Depth-limited concurrent BFS supplies the partial levels, so the search
maps directly onto the engines' ``max_depth`` interface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph
from repro.bfs.reference import reference_bfs


def _closeness_from_depths(depths: np.ndarray, n: int) -> float:
    """Wasserman-Faust closeness from a complete depth array."""
    reached_mask = depths > 0
    reached = int(np.count_nonzero(reached_mask))
    total = int(depths[reached_mask].sum())
    if reached == 0 or total == 0 or n <= 1:
        return 0.0
    return (reached / (n - 1)) * (reached / total)


def _upper_bound(depths: np.ndarray, level: int, n: int) -> float:
    """Upper bound on closeness after BFS is complete through ``level``.

    Every unvisited vertex is either unreachable or at depth >= level+1.
    With ``m`` of them included at the floor distance ``level + 1`` the
    Wasserman-Faust score is ``(r0 + m)^2 / ((n - 1)(t0 + (level+1) m)``,
    which is quasi-convex in ``m`` — its maximum over feasible
    configurations sits at an endpoint.  The true score is therefore
    bounded by the larger of the two extremes: all unvisited vertices
    unreachable, or all of them at depth ``level + 1``.
    """
    none_included = _closeness_from_depths(depths, n)
    optimistic = depths.copy()
    optimistic[optimistic < 0] = level + 1
    all_included = _closeness_from_depths(optimistic, n)
    return max(none_included, all_included)


def top_k_closeness(
    graph: CSRGraph,
    k: int,
    candidates: Optional[Sequence[int]] = None,
    prune_after_level: int = 2,
) -> List[Tuple[int, float]]:
    """The ``k`` vertices with the highest closeness, with scores.

    Parameters
    ----------
    graph:
        Graph to analyze.
    k:
        Result count (clamped to the candidate count).
    candidates:
        Vertices to consider (all by default).
    prune_after_level:
        BFS levels to run before testing the upper bound; candidates
        whose bound falls below the current k-th score are abandoned
        without completing their traversal.

    Returns a list of ``(vertex, closeness)`` sorted descending; exact —
    pruning never discards a true top-k member.
    """
    if k <= 0:
        raise TraversalError("k must be positive")
    if prune_after_level < 1:
        raise TraversalError("prune_after_level must be >= 1")
    n = graph.num_vertices
    if candidates is None:
        candidates = range(n)
    candidates = [int(c) for c in candidates]
    for c in candidates:
        if not 0 <= c < n:
            raise TraversalError(f"candidate {c} out of range [0, {n})")
    k = min(k, len(candidates))
    if k == 0:
        return []

    # High-degree vertices tend to have high closeness; processing them
    # first raises the pruning threshold quickly.
    degrees = graph.out_degrees()
    order = sorted(candidates, key=lambda v: -int(degrees[v]))

    top: List[Tuple[int, float]] = []
    threshold = -1.0
    pruned = 0
    for vertex in order:
        partial = _partial_bfs(graph, vertex, prune_after_level)
        if len(top) == k:
            bound = _upper_bound(partial, prune_after_level, n)
            if bound <= threshold:
                pruned += 1
                continue
        depths = _resume_bfs(graph, partial, prune_after_level)
        score = _closeness_from_depths(depths, n)
        top.append((vertex, score))
        top.sort(key=lambda item: (-item[1], item[0]))
        top = top[:k]
        threshold = top[-1][1]
    return top


def _partial_bfs(graph: CSRGraph, source: int, levels: int) -> np.ndarray:
    """Depth array completed through ``levels`` BFS levels."""
    from repro.util import gather_neighbors
    from repro.graph.csr import VERTEX_DTYPE

    depths = np.full(graph.num_vertices, -1, dtype=np.int32)
    depths[source] = 0
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    for level in range(levels):
        if frontier.size == 0:
            break
        _, neighbors = gather_neighbors(graph, frontier)
        fresh = np.unique(neighbors[depths[neighbors] < 0])
        depths[fresh] = level + 1
        frontier = fresh.astype(VERTEX_DTYPE)
    return depths


def _resume_bfs(graph: CSRGraph, partial: np.ndarray, level: int) -> np.ndarray:
    """Continue a partial BFS to completion."""
    from repro.util import gather_neighbors
    from repro.graph.csr import VERTEX_DTYPE

    depths = partial.copy()
    frontier = np.flatnonzero(depths == level).astype(VERTEX_DTYPE)
    while frontier.size:
        _, neighbors = gather_neighbors(graph, frontier)
        fresh = np.unique(neighbors[depths[neighbors] < 0])
        level += 1
        depths[fresh] = level
        frontier = fresh.astype(VERTEX_DTYPE)
    return depths


def exact_closeness_ranking(graph: CSRGraph) -> List[Tuple[int, float]]:
    """Reference: all vertices ranked by closeness (no pruning)."""
    n = graph.num_vertices
    scores = [
        (v, _closeness_from_depths(reference_bfs(graph, v), n))
        for v in range(n)
    ]
    scores.sort(key=lambda item: (-item[1], item[0]))
    return scores
