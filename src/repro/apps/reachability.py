"""k-hop reachability index construction (section 8.7 / Table 1).

A k-hop reachability query asks "is there a path from s to t with
fewer than k edges?".  Index construction "computes the first k levels
BFS for a large amount of selected vertices" — exactly a depth-limited
concurrent BFS, which is where iBFS's order-of-magnitude win over
per-source systems shows up.

The index stores one bitmap per indexed source (vertices within k
hops), so queries are O(1) bit tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph
from repro.core.result import ConcurrentResult


class _ConcurrentEngine(Protocol):
    """Any engine exposing the shared concurrent-BFS interface."""

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult: ...


class ReachabilityIndex:
    """k-hop reachability index over a fixed set of sources."""

    def __init__(
        self,
        k: int,
        sources: Sequence[int],
        reachable: Dict[int, np.ndarray],
        build_seconds: float,
    ) -> None:
        if k <= 0:
            raise TraversalError("k must be positive")
        self.k = k
        self.sources = [int(s) for s in sources]
        self._reachable = reachable
        #: Simulated seconds the index construction took (Table 1's metric).
        self.build_seconds = build_seconds

    def query(self, source: int, target: int) -> bool:
        """True when ``target`` is within ``k`` hops of ``source``."""
        try:
            bitmap = self._reachable[int(source)]
        except KeyError:
            raise TraversalError(
                f"source {source} is not indexed; indexed sources: "
                f"{len(self.sources)}"
            ) from None
        if not 0 <= target < bitmap.size:
            raise TraversalError(f"target {target} out of range")
        return bool(bitmap[target])

    def reachable_count(self, source: int) -> int:
        """Number of vertices within k hops of ``source`` (inclusive)."""
        return int(np.count_nonzero(self._reachable[int(source)]))

    def memory_bytes(self) -> int:
        """Approximate index footprint (one bool per vertex per source)."""
        return sum(bitmap.size for bitmap in self._reachable.values())


def build_reachability_index(
    graph: CSRGraph,
    engine: _ConcurrentEngine,
    sources: Sequence[int],
    k: int = 3,
) -> ReachabilityIndex:
    """Build a k-hop index with any concurrent-BFS engine.

    Runs a depth-limited (``max_depth=k``) concurrent traversal from the
    given sources; each source's bitmap marks vertices at depth <= k.
    """
    if k <= 0:
        raise TraversalError("k must be positive")
    result = engine.run(sources, max_depth=k, store_depths=True)
    reachable = {}
    for source in result.sources:
        row = result.depth_row(source)
        reachable[int(source)] = (row >= 0) & (row <= k)
    return ReachabilityIndex(k, result.sources, reachable, result.seconds)
