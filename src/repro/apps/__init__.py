"""Applications built on concurrent BFS (sections 1 and 8.7).

The paper motivates iBFS with graph algorithms that need many BFS
traversals: reachability-index construction (Table 1), betweenness
centrality, and closeness centrality.  Each application here accepts
any engine with the common ``run(sources, ...)`` interface, so the
paper's system comparison is a one-line engine swap.
"""

from repro.apps.reachability import ReachabilityIndex, build_reachability_index
from repro.apps.closeness import closeness_centrality
from repro.apps.betweenness import betweenness_centrality
from repro.apps.apsp import (
    apsp_unweighted,
    floyd_warshall,
    eccentricities,
    exact_diameter,
)
from repro.apps.components import (
    connected_components_concurrent,
    component_sizes,
)
from repro.apps.topk_closeness import top_k_closeness, exact_closeness_ranking

__all__ = [
    "ReachabilityIndex",
    "build_reachability_index",
    "closeness_centrality",
    "betweenness_centrality",
    "apsp_unweighted",
    "floyd_warshall",
    "eccentricities",
    "exact_diameter",
    "connected_components_concurrent",
    "component_sizes",
    "top_k_closeness",
    "exact_closeness_ranking",
]
