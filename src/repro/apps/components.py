"""Connected components via concurrent BFS.

Weakly connected components computed by repeatedly launching a *group*
of BFS instances from unlabeled seed vertices — exactly the "many
cheap traversals" workload iBFS accelerates — rather than one
traversal at a time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.builders import to_undirected
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.core.engine import IBFS, IBFSConfig
from repro.gpusim.device import Device


def connected_components_concurrent(
    graph: CSRGraph,
    batch_size: int = 32,
    device: Optional[Device] = None,
    seed: int = 0,
) -> np.ndarray:
    """Weakly-connected-component labels via batched concurrent BFS.

    Each round seeds up to ``batch_size`` BFS instances on unlabeled
    vertices of the symmetrized graph and labels everything they reach;
    seeds whose regions collide within a round are merged afterwards.
    Labels are the smallest vertex id in each component, matching
    :func:`repro.graph.properties.connected_components`.
    """
    n = graph.num_vertices
    labels = -np.ones(n, dtype=VERTEX_DTYPE)
    if n == 0:
        return labels
    undirected = graph if graph.is_symmetric() else to_undirected(graph)
    engine = IBFS(
        undirected,
        IBFSConfig(group_size=batch_size, groupby=False, seed=seed),
        device=device,
    )
    while True:
        unlabeled = np.flatnonzero(labels < 0)
        if unlabeled.size == 0:
            break
        seeds = unlabeled[:batch_size].tolist()
        result = engine.run(seeds, store_depths=True)
        # Union the seeds whose BFS regions overlap.
        reach = result.depths >= 0  # (batch, n)
        seed_label = {s: s for s in seeds}
        for i, a in enumerate(seeds):
            for j in range(i):
                b = seeds[j]
                if bool(np.any(reach[i] & reach[j])):
                    merged = min(seed_label[a], seed_label[b])
                    for key, value in list(seed_label.items()):
                        if value in (seed_label[a], seed_label[b]):
                            seed_label[key] = merged
                    seed_label[a] = merged
                    seed_label[b] = merged
        for i, s in enumerate(seeds):
            touched = np.flatnonzero(reach[i])
            label = min(
                seed_label[s],
                int(labels[touched][labels[touched] >= 0].min())
                if np.any(labels[touched] >= 0)
                else seed_label[s],
            )
            labels[touched] = np.where(
                (labels[touched] < 0) | (labels[touched] > label),
                label,
                labels[touched],
            )
    # Canonicalize: relabel each component by its minimum member id.
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        labels[members] = members.min()
    return labels


def component_sizes(labels: np.ndarray) -> dict:
    """``{component_label: size}`` from a label array."""
    unique, counts = np.unique(labels, return_counts=True)
    return {int(label): int(count) for label, count in zip(unique, counts)}
