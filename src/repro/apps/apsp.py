"""All-pairs shortest paths.

iBFS *is* APSP when ``i = |V|`` (section 1).  This module provides the
unweighted APSP front-end over any concurrent engine, plus a
Floyd-Warshall reference for weighted graphs (the classic comparator
from section 9) used by the tests to cross-validate the SSSP engines.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.weighted import WeightedCSRGraph
from repro.core.result import ConcurrentResult


class _ConcurrentEngine(Protocol):
    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult: ...


def apsp_unweighted(graph: CSRGraph, engine: _ConcurrentEngine) -> np.ndarray:
    """Hop-count distance matrix via concurrent BFS from every vertex.

    Returns an ``(n, n)`` int32 matrix with ``-1`` for unreachable
    pairs.  Memory scales as n^2 — intended for the laptop-scale graphs
    this reproduction uses.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros((0, 0), dtype=np.int32)
    result = engine.run(range(n), store_depths=True)
    return result.depths


def floyd_warshall(graph: WeightedCSRGraph) -> np.ndarray:
    """Weighted APSP reference (O(n^3); small graphs only).

    Raises :class:`GraphError` when a negative cycle exists.
    """
    n = graph.num_vertices
    if n > 2048:
        raise GraphError(
            f"floyd_warshall is O(n^3); {n} vertices is too large"
        )
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    sources, dests = graph.graph.edge_array()
    # Multi-edges keep the lightest weight.
    np.minimum.at(dist, (sources, dests), graph.weights)
    for k in range(n):
        through_k = dist[:, k, None] + dist[None, k, :]
        np.minimum(dist, through_k, out=dist)
    if np.any(np.diag(dist) < 0):
        raise GraphError("graph contains a negative cycle")
    return dist


def eccentricities(graph: CSRGraph, engine: _ConcurrentEngine) -> np.ndarray:
    """Per-vertex eccentricity (max finite BFS depth; -1 if isolated)."""
    depths = apsp_unweighted(graph, engine)
    ecc = np.full(graph.num_vertices, -1, dtype=np.int64)
    for v in range(graph.num_vertices):
        reached = depths[v] >= 0
        if np.count_nonzero(reached) > 1:
            ecc[v] = int(depths[v][reached].max())
        elif reached.any():
            ecc[v] = 0
    return ecc


def exact_diameter(graph: CSRGraph, engine: _ConcurrentEngine) -> int:
    """Largest finite pairwise hop distance (0 for edgeless graphs)."""
    ecc = eccentricities(graph, engine)
    return int(ecc.max()) if ecc.size else 0
