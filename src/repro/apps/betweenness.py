"""Betweenness centrality (Brandes' algorithm) on unweighted graphs.

The paper cites betweenness centrality [11, 12] as a primary consumer
of concurrent BFS — each source contributes one BFS-shaped forward
sweep (shortest-path counting) and one backward dependency
accumulation.  The forward sweep here is a vectorized level-synchronous
BFS identical in structure to the library's engines; exact path counts
(sigma) require per-edge accumulation that the bit-packed engines do
not carry, so this module owns its sweep and uses the engines' graphs
directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.util import gather_neighbors


def betweenness_centrality(
    graph: CSRGraph,
    sources: Optional[Sequence[int]] = None,
    normalized: bool = True,
) -> np.ndarray:
    """Betweenness centrality scores, one per vertex.

    Parameters
    ----------
    graph:
        Directed graph (undirected graphs should be symmetrized first).
    sources:
        Subset of sources to accumulate over (all vertices by default);
        sampling sources gives the usual approximate BC.
    normalized:
        Scale by ``1 / ((n - 1)(n - 2))`` for directed graphs.
    """
    n = graph.num_vertices
    if sources is None:
        sources = range(n)
    centrality = np.zeros(n, dtype=np.float64)
    for source in sources:
        centrality += _single_source_dependency(graph, int(source))
    if normalized and n > 2:
        centrality /= (n - 1) * (n - 2)
    return centrality


def _single_source_dependency(graph: CSRGraph, source: int) -> np.ndarray:
    """Brandes dependency contribution of one source."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TraversalError(f"source {source} out of range [0, {n})")
    depth = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    depth[source] = 0
    sigma[source] = 1.0

    levels = []
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    while frontier.size:
        levels.append(frontier)
        srcs, nbrs = gather_neighbors(graph, frontier)
        if nbrs.size == 0:
            break
        fresh_mask = depth[nbrs] == -1
        fresh = np.unique(nbrs[fresh_mask])
        depth[fresh] = depth[frontier[0]] + 1
        # sigma flows along edges (u -> v) with depth[v] == depth[u] + 1.
        tree_mask = depth[nbrs] == depth[srcs] + 1
        np.add.at(sigma, nbrs[tree_mask], sigma[srcs[tree_mask]])
        frontier = fresh.astype(VERTEX_DTYPE)

    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(levels[1:]):
        srcs, nbrs = gather_neighbors(graph, frontier)
        if nbrs.size:
            tree_mask = depth[nbrs] == depth[srcs] + 1
            contrib = np.zeros(n, dtype=np.float64)
            ratio = (1.0 + delta[nbrs[tree_mask]]) / np.maximum(
                sigma[nbrs[tree_mask]], 1.0
            )
            np.add.at(contrib, srcs[tree_mask], sigma[srcs[tree_mask]] * ratio)
            delta += contrib
    # The source itself accumulates no dependency.
    delta[source] = 0.0
    return delta
