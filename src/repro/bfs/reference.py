"""Oracle BFS used to validate every engine in the test suite.

A deliberately simple queue-based traversal with no performance
modeling: its depth arrays define correctness for the whole library.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph

#: Depth value for unreachable vertices.
UNREACHED = -1


def reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS depths from ``source``; unreachable vertices get ``-1``."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TraversalError(f"source {source} out of range [0, {n})")
    depths = np.full(n, UNREACHED, dtype=np.int32)
    depths[source] = 0
    queue = deque([source])
    offsets = graph.row_offsets
    indices = graph.col_indices
    while queue:
        v = queue.popleft()
        next_depth = depths[v] + 1
        for idx in range(offsets[v], offsets[v + 1]):
            w = indices[idx]
            if depths[w] == UNREACHED:
                depths[w] = next_depth
                queue.append(w)
    return depths


def reference_bfs_multi(graph: CSRGraph, sources: Sequence[int]) -> np.ndarray:
    """Stacked depth arrays, one row per source (the oracle for MSSP/APSP)."""
    return np.stack([reference_bfs(graph, int(s)) for s in sources])
