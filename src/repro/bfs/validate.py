"""Graph500-style self-validation of BFS output.

The Graph500 specification (whose generator the paper uses for
KG0/KG1/KG2) validates a BFS result without an oracle by checking
local consistency.  :func:`validate_depths` applies the depth-array
analogue of those rules:

1. the source has depth 0 and every other depth is -1 or positive;
2. every edge spans at most one level
   (``|depth(u) - depth(v)| <= 1`` when both endpoints are reached);
3. every reached non-source vertex has an in-neighbor exactly one
   level shallower (a valid BFS parent exists);
4. reachability is closed: no edge leads from a reached vertex to an
   unreached one.

These checks run in O(|V| + |E|) and are used by the property-based
tests as an oracle-free cross-check on every engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph


def validate_depths(graph: CSRGraph, source: int, depths: np.ndarray) -> None:
    """Raise :class:`TraversalError` when ``depths`` is not a valid BFS
    depth assignment for ``source`` on ``graph``."""
    n = graph.num_vertices
    depths = np.asarray(depths)
    if depths.shape != (n,):
        raise TraversalError(
            f"depth array shape {depths.shape} != ({n},)"
        )
    if not 0 <= source < n:
        raise TraversalError(f"source {source} out of range [0, {n})")

    # Rule 1: source at zero; everything else -1 or >= 1.
    if depths[source] != 0:
        raise TraversalError(f"source depth is {depths[source]}, expected 0")
    others = np.delete(depths, source)
    if np.any((others != -1) & (others < 1)):
        raise TraversalError("non-source vertices must have depth -1 or >= 1")

    sources_arr, dests_arr = graph.edge_array()
    du = depths[sources_arr]
    dv = depths[dests_arr]
    both = (du >= 0) & (dv >= 0)

    # Rule 2: an edge (u, v) forces depth(v) <= depth(u) + 1.
    stretched = both & (dv > du + 1)
    if stretched.any():
        idx = int(np.flatnonzero(stretched)[0])
        raise TraversalError(
            f"edge ({int(sources_arr[idx])}, {int(dests_arr[idx])}) spans "
            f"{int(du[idx])} -> {int(dv[idx])}: BFS would have found the "
            "shorter path"
        )

    # Rule 4: no reached -> unreached edge.
    leaking = (du >= 0) & (dv == -1)
    if leaking.any():
        idx = int(np.flatnonzero(leaking)[0])
        raise TraversalError(
            f"vertex {int(dests_arr[idx])} is marked unreached but has the "
            f"reached in-neighbor {int(sources_arr[idx])}"
        )

    # Rule 3: each reached non-source vertex has a parent one level up.
    has_parent = np.zeros(n, dtype=bool)
    parent_edges = both & (dv == du + 1)
    has_parent[dests_arr[parent_edges]] = True
    reached = depths >= 1
    orphans = reached & ~has_parent
    if orphans.any():
        vertex = int(np.flatnonzero(orphans)[0])
        raise TraversalError(
            f"vertex {vertex} has depth {int(depths[vertex])} but no "
            "in-neighbor one level shallower"
        )


def is_valid_bfs(graph: CSRGraph, source: int, depths: np.ndarray) -> bool:
    """Boolean form of :func:`validate_depths`."""
    try:
        validate_depths(graph, source, depths)
    except TraversalError:
        return False
    return True
