"""Naive concurrent-BFS baseline: one private kernel per instance.

"A naive implementation of concurrent BFS will run all BFS instances
separately and keep its own private frontier queue and status array...
NVIDIA Kepler provides Hyper-Q to support concurrent execution of
multiple kernels" (section 2).  Each instance still issues all of its
own memory traffic — nothing is shared — so the kernels contend for
bandwidth, and at the direction-switching level "each individual BFS
would require a large number of threads", oversubscribing the device.
The cost model's :meth:`~repro.gpusim.timing.CostModel.overlapped_time`
prices exactly that, which is why this baseline lands within a few
percent of sequential execution (figure 15) and sometimes loses to it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.bfs.single import SingleBFS
from repro.core.result import ConcurrentResult
from repro.plan.policy import DirectionPolicy, Policy


class NaiveConcurrentBFS:
    """Run ``i`` BFS instances as concurrent independent kernels."""

    name = "naive"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.engine = SingleBFS(graph, self.device, policy, planner=planner)

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from every source with Hyper-Q kernel overlap."""
        sources = [int(s) for s in sources]
        counters = ProfilerCounters()
        kernels = []
        depths = [] if store_depths else None
        for source in sources:
            result = self.engine.run(source, max_depth=max_depth)
            counters.merge(result.record.counters)
            kernels.append(result.record.levels)
            if depths is not None:
                depths.append(result.depths)
        seconds = self.device.cost.overlapped_time(kernels)
        matrix = np.stack(depths) if depths else None
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=seconds,
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
        )
