"""Single-instance BFS engines and the sequential/naive concurrent baselines.

These implement the paper's substrate: direction-optimizing BFS in the
style of Enterprise [33] (the system iBFS extends), executed on the
simulated device, plus the two straw-man concurrent schemes the paper
measures first — running all instances *sequentially* and running them
*naively in parallel* as independent kernels under Hyper-Q.
"""

from repro.bfs.reference import reference_bfs, reference_bfs_multi
# Canonical home of the direction machinery is repro.plan; importing
# from there keeps the repro.bfs.direction deprecation shim quiet.
from repro.plan.policy import DirectionPolicy
from repro.plan.types import Direction
from repro.bfs.single import SingleBFS, SingleResult
from repro.bfs.sequential import SequentialConcurrentBFS
from repro.bfs.naive import NaiveConcurrentBFS
from repro.bfs.validate import validate_depths, is_valid_bfs
from repro.bfs.sssp import (
    dijkstra,
    bellman_ford,
    DeltaStepping,
    SSSPResult,
    concurrent_dijkstra,
)
from repro.bfs.paths import (
    extract_path,
    path_length,
    all_shortest_path_counts,
)
from repro.bfs.bidirectional import bidirectional_distance, MeetResult

__all__ = [
    "reference_bfs",
    "reference_bfs_multi",
    "DirectionPolicy",
    "Direction",
    "SingleBFS",
    "SingleResult",
    "SequentialConcurrentBFS",
    "NaiveConcurrentBFS",
    "validate_depths",
    "is_valid_bfs",
    "dijkstra",
    "bellman_ford",
    "DeltaStepping",
    "SSSPResult",
    "concurrent_dijkstra",
    "extract_path",
    "path_length",
    "all_shortest_path_counts",
    "bidirectional_distance",
    "MeetResult",
]
