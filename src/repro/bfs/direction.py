"""Direction-optimizing heuristic (Beamer-style, as used by Enterprise).

"BFS typically starts the traversal in top-down and switches to
bottom-up in a later stage" (section 2).  The standard switch rule
compares the work remaining in each direction: go bottom-up when the
frontier's out-edge count exceeds ``1/alpha`` of the unexplored edge
count, and return to top-down when the frontier shrinks below
``|V| / beta`` vertices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Traversal direction of one BFS level."""

    TOP_DOWN = "td"
    BOTTOM_UP = "bu"


@dataclass
class DirectionPolicy:
    """Per-instance direction state machine.

    Parameters
    ----------
    alpha:
        Top-down -> bottom-up threshold (Beamer's default 14).
    beta:
        Bottom-up -> top-down threshold (Beamer's default 24).
    allow_bottom_up:
        Disable to model top-down-only systems (B40C, SpMM-BC).
    sticky:
        When true (the paper's GPU setting) an instance that switched to
        bottom-up never switches back; the bitwise status array requires
        monotone visited bits, which a return to top-down would not
        break, but Enterprise-style GPU BFS stays bottom-up once the
        frontier covers the graph's dense core.
    """

    alpha: float = 14.0
    beta: float = 24.0
    allow_bottom_up: bool = True
    sticky: bool = True

    def initial(self) -> Direction:
        return Direction.TOP_DOWN

    def next_direction(
        self,
        current: Direction,
        frontier_edges: int,
        unexplored_edges: int,
        frontier_vertices: int,
        num_vertices: int,
    ) -> Direction:
        """Direction for the next level given this level's outcome."""
        if not self.allow_bottom_up:
            return Direction.TOP_DOWN
        if current is Direction.TOP_DOWN:
            if frontier_edges * self.alpha > unexplored_edges and frontier_edges > 0:
                return Direction.BOTTOM_UP
            return Direction.TOP_DOWN
        if self.sticky:
            return Direction.BOTTOM_UP
        if frontier_vertices * self.beta < num_vertices:
            return Direction.TOP_DOWN
        return Direction.BOTTOM_UP
