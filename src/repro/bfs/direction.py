"""Deprecated shim — the direction machinery moved to :mod:`repro.plan`.

``Direction`` and ``DirectionPolicy`` are re-exported unchanged (the
canonical definitions now live in :mod:`repro.plan.types` and
:mod:`repro.plan.policy`, where ``DirectionPolicy`` gained alpha/beta
validation at construction).  Import from ``repro.plan`` going forward.
"""

from __future__ import annotations

import warnings

from repro.plan.policy import DirectionPolicy
from repro.plan.types import Direction

warnings.warn(
    "repro.bfs.direction is deprecated; import Direction and "
    "DirectionPolicy from repro.plan instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Direction", "DirectionPolicy"]
