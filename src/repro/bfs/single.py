"""Single-source direction-optimizing BFS on the simulated device.

This is the Enterprise-style [33] engine iBFS builds on: top-down
expansion + inspection with a frontier queue and status array, a
Beamer-style switch to bottom-up, and per-vertex early termination in
bottom-up ("since its first neighbor 3 is visited, bottom-up BFS will
mark the depth of vertex 6 as 4, and there is no need to check
additional neighbors").

Every level emits exact counts of inspections, queue operations, and
coalesced memory transactions derived from the actual addresses
touched, so the cost model can price it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.device import Device
from repro.kernels import bucketed_hit_scan, round_major_probes
from repro.plan.policy import (
    DirectionPolicy,
    HeuristicPolicy,
    Policy,
    RecordedPolicy,
)
from repro.plan.types import Direction, LevelDecision, LevelStats, RunPlan
from repro.util import gather_neighbors

#: Bytes of one per-vertex status entry (depth byte in the status array).
STATUS_BYTES = 4
#: Scalar instructions charged per edge inspection / per frontier vertex.
INSTRUCTIONS_PER_EDGE = 10
INSTRUCTIONS_PER_VERTEX = 6

UNVISITED = -1


@dataclass
class SingleResult:
    """Outcome of one single-source traversal."""

    source: int
    depths: np.ndarray
    record: RunRecord
    seconds: float
    #: Decision log of the traversal (one-instance ``RunPlan``).
    plan: Optional[RunPlan] = None

    @property
    def edges_traversed(self) -> int:
        return self.record.counters.edges_traversed

    @property
    def teps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.edges_traversed / self.seconds

    @property
    def reached(self) -> int:
        return int(np.count_nonzero(self.depths >= 0))


class SingleBFS:
    """Direction-optimizing single-source BFS engine.

    Parameters
    ----------
    graph:
        Graph to traverse (its reverse CSR is used for bottom-up).
    device:
        Simulated execution target; defaults to a Kepler K40.
    policy:
        Direction-switch policy; pass ``allow_bottom_up=False`` for a
        top-down-only engine (the B40C baseline).
    """

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.policy = policy or DirectionPolicy()
        if planner is None:
            planner = HeuristicPolicy.from_direction_policy(self.policy)
        self.planner = planner
        self._reverse = graph.reverse() if planner.allow_bottom_up else None

    def run(
        self,
        source: int,
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ) -> SingleResult:
        """Traverse from ``source`` and return depths plus cost records.

        With ``plan=`` the recorded decisions replay verbatim — the
        per-level frontier statistics that feed the direction heuristic
        are never computed.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise TraversalError(f"source {source} out of range [0, {n})")
        if plan is not None:
            planner: Policy = RecordedPolicy(plan)
        else:
            planner = self.planner
        total_edges = self.graph.num_edges
        session = planner.session(1, n, total_edges)
        wants_stats = session.wants_stats
        run_plan = RunPlan(policy=planner.name, engine="single", group_size=1)

        depths = np.full(n, UNVISITED, dtype=np.int32)
        depths[source] = 0
        record = RunRecord()
        frontier = np.asarray([source], dtype=VERTEX_DTYPE)
        decision: Optional[LevelDecision] = None
        stats_prev: Optional[LevelStats] = None
        level = 0
        while True:
            if max_depth is not None and level >= max_depth:
                break
            if decision is None:
                decision = session.initial()
            else:
                decision = session.next(stats_prev)
            direction = decision.directions[0]
            if direction is Direction.TOP_DOWN:
                if frontier.size == 0:
                    break
                new_frontier = self._top_down_level(depths, frontier, level, record)
                run_plan.append(decision)
            else:
                if self._reverse is None:
                    self._reverse = self.graph.reverse()
                unvisited = np.flatnonzero(depths == UNVISITED).astype(VERTEX_DTYPE)
                if unvisited.size == 0:
                    break
                new_frontier = self._bottom_up_level(
                    depths, unvisited, level, record,
                    kernel=decision.kernel,
                )
                run_plan.append(decision)
                if new_frontier.size == 0:
                    break
            if wants_stats:
                frontier_edges = int(self.graph.out_degrees()[new_frontier].sum())
                explored = depths >= 0
                unexplored_edges = total_edges - int(
                    self.graph.out_degrees()[explored].sum()
                )
                stats_prev = LevelStats(
                    level=level,
                    num_vertices=n,
                    total_edges=total_edges,
                    frontier_vertices=(int(new_frontier.size),),
                    frontier_edges=(frontier_edges,),
                    unexplored_edges=(unexplored_edges,),
                    visited_vertices=(int(np.count_nonzero(explored)),),
                    active=(True,),
                )
            frontier = new_frontier
            level += 1
            if frontier.size == 0:
                break
        record.counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        return SingleResult(source, depths, record, seconds, plan=run_plan)

    # ------------------------------------------------------------------
    # Top-down: expand frontiers, inspect unvisited neighbors
    # ------------------------------------------------------------------
    def _top_down_level(
        self,
        depths: np.ndarray,
        frontier: np.ndarray,
        level: int,
        record: RunRecord,
    ) -> np.ndarray:
        mem = self.device.memory
        counters = record.counters
        degrees = self.graph.out_degrees()[frontier]
        _, neighbors = gather_neighbors(self.graph, frontier)

        unvisited_mask = depths[neighbors] == UNVISITED
        discovered = neighbors[unvisited_mask]
        new_frontier = np.unique(discovered).astype(VERTEX_DTYPE)
        depths[new_frontier] = level + 1

        inspections = int(neighbors.size)
        counters.inspections += inspections
        counters.edges_traversed += inspections
        counters.frontier_enqueues += int(new_frontier.size)
        counters.levels += 1

        # Memory traffic: read FQ, load adjacency lists, inspect neighbor
        # statuses (scattered), write discovered statuses (scattered),
        # regenerate FQ by scanning the status array.
        loads = mem.stream_transactions(int(frontier.size) * 8)
        loads += mem.adjacency_transactions(degrees)
        inspect_txn, inspect_req = mem.coalesced_transactions(neighbors, STATUS_BYTES)
        loads += inspect_txn
        fq_scan = mem.stream_transactions(depths.size * STATUS_BYTES)
        loads += fq_scan
        store_txn, store_req = mem.coalesced_transactions(discovered, STATUS_BYTES)
        stores = store_txn + mem.stream_transactions(int(new_frontier.size) * 8)

        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += (
            inspect_req
            + self.device.warps_for(int(frontier.size))
            + self.device.warps_for(depths.size)
        )
        counters.global_store_requests += store_req + self.device.warps_for(
            int(new_frontier.size)
        )
        instructions = (
            inspections * INSTRUCTIONS_PER_EDGE
            + int(frontier.size) * INSTRUCTIONS_PER_VERTEX
        )
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="td",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=int(frontier.size),
                frontier_size=int(frontier.size),
            )
        )
        return new_frontier

    # ------------------------------------------------------------------
    # Bottom-up: unvisited vertices probe in-neighbors until a visited
    # parent is found (early termination)
    # ------------------------------------------------------------------
    def _bottom_up_level(
        self,
        depths: np.ndarray,
        unvisited: np.ndarray,
        level: int,
        record: RunRecord,
        kernel: str = "auto",
    ) -> np.ndarray:
        assert self._reverse is not None
        mem = self.device.memory
        counters = record.counters
        rev = self._reverse
        offsets = rev.row_offsets
        indices = rev.col_indices

        active = unvisited
        starts = offsets[active]
        ends = offsets[active + 1]

        # "Visited" here means depth assigned at an earlier level;
        # vertices discovered during this same level carry depth
        # level + 1 and must not count as parents yet.  The scan itself
        # runs as degree-bucketed vector passes; per-vertex probe counts
        # and first-hit results are identical to the synchronized round
        # loop, and the round-major probe stream is reconstructed for
        # the coalescing model.
        def parent_hit(_positions: np.ndarray, nb: np.ndarray) -> np.ndarray:
            parent_depth = depths[nb]
            return (parent_depth >= 0) & (parent_depth <= level)

        probes, found = bucketed_hit_scan(
            indices,
            starts,
            ends - starts,
            parent_hit,
            depth_table=depths,
            level=level,
            kernel=kernel,
        )

        discovered = active[found]
        depths[discovered] = level + 1
        early = found & (probes < (ends - starts))
        counters.early_terminations += int(np.count_nonzero(early))

        inspections = int(probes.sum())
        counters.inspections += inspections
        counters.bottom_up_inspections += inspections
        counters.edges_traversed += inspections
        counters.frontier_enqueues += int(active.size)
        counters.levels += 1

        probed_ids = round_major_probes(indices, starts, probes)
        loads = mem.stream_transactions(int(active.size) * 8)
        per_line = self.device.config.entries_per_transaction
        loads += int(np.sum((probes + per_line - 1) // per_line))
        inspect_txn, inspect_req = mem.coalesced_transactions(probed_ids, STATUS_BYTES)
        loads += inspect_txn
        loads += mem.stream_transactions(depths.size * STATUS_BYTES)
        store_txn, store_req = mem.coalesced_transactions(discovered, STATUS_BYTES)
        stores = store_txn + mem.stream_transactions(int(active.size) * 8)

        counters.global_load_transactions += loads
        counters.global_store_transactions += stores
        counters.global_load_requests += (
            inspect_req
            + self.device.warps_for(int(active.size))
            + self.device.warps_for(depths.size)
        )
        counters.global_store_requests += store_req + self.device.warps_for(
            int(active.size)
        )
        instructions = (
            inspections * INSTRUCTIONS_PER_EDGE
            + int(active.size) * INSTRUCTIONS_PER_VERTEX
        )
        counters.instructions += instructions

        record.append(
            LevelRecord(
                depth=level,
                direction="bu",
                load_transactions=loads,
                store_transactions=stores,
                atomics=0,
                instructions=instructions,
                threads=int(active.size),
                frontier_size=int(active.size),
            )
        )
        return discovered
