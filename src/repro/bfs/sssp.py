"""Single-source shortest paths on weighted graphs.

The paper positions iBFS within the shortest-path family (section 1:
SSSP / MSSP / APSP; section 9: Dijkstra, Bellman-Ford, Floyd-Warshall,
and GPU delta-stepping [58]).  This module provides:

* :func:`dijkstra` — the exact reference (non-negative weights);
* :func:`bellman_ford` — handles negative edges, detects negative
  cycles reachable from the source;
* :class:`DeltaStepping` — the bucketed relaxation scheme GPU SSSP
  implementations use, executed on the simulated device with the same
  transaction accounting as the BFS engines;
* :func:`concurrent_dijkstra` — many sources, the MSSP analogue.

With unit weights every routine agrees with BFS depth (tested), which
is the sense in which iBFS "applies to all types of shortest path
problems on an unweighted graph".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import GraphError, TraversalError
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.weighted import WeightedCSRGraph
from repro.gpusim.counters import LevelRecord, RunRecord
from repro.gpusim.device import Device

#: Distance assigned to unreachable vertices.
UNREACHABLE = np.inf


def dijkstra(graph: WeightedCSRGraph, source: int) -> np.ndarray:
    """Exact shortest-path distances (reference; non-negative weights)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TraversalError(f"source {source} out of range [0, {n})")
    if graph.has_negative_weights():
        raise GraphError("dijkstra requires non-negative weights")
    dist = np.full(n, UNREACHABLE)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    offsets = graph.graph.row_offsets
    indices = graph.graph.col_indices
    weights = graph.weights
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for idx in range(offsets[v], offsets[v + 1]):
            w = int(indices[idx])
            nd = d + weights[idx]
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def bellman_ford(graph: WeightedCSRGraph, source: int) -> np.ndarray:
    """Shortest paths allowing negative edges; raises
    :class:`~repro.errors.GraphError` on a reachable negative cycle."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TraversalError(f"source {source} out of range [0, {n})")
    dist = np.full(n, UNREACHABLE)
    dist[source] = 0.0
    sources, dests = graph.graph.edge_array()
    weights = graph.weights
    for _ in range(max(n - 1, 1)):
        candidate = dist[sources] + weights
        improved = candidate < dist[dests]
        if not improved.any():
            return dist
        np.minimum.at(dist, dests[improved], candidate[improved])
    candidate = dist[sources] + weights
    if bool((candidate < dist[dests]).any()):
        raise GraphError("negative cycle reachable from source")
    return dist


@dataclass
class SSSPResult:
    """Outcome of a device-modeled SSSP run."""

    source: int
    distances: np.ndarray
    record: RunRecord
    seconds: float

    @property
    def relaxations(self) -> int:
        return self.record.counters.inspections

    @property
    def reached(self) -> int:
        return int(np.count_nonzero(np.isfinite(self.distances)))


class DeltaStepping:
    """Delta-stepping SSSP on the simulated device.

    Vertices are settled in distance buckets of width ``delta``; each
    bucket is relaxed to a fixed point (light edges) before the next
    bucket opens — the standard trade-off between Dijkstra (delta -> 0)
    and Bellman-Ford (delta -> inf) that GPU SSSP codes [58] implement.
    Each bucket iteration is priced like a BFS level: frontier reads,
    adjacency loads, scattered distance updates.
    """

    def __init__(
        self,
        graph: WeightedCSRGraph,
        device: Optional[Device] = None,
        delta: Optional[float] = None,
    ) -> None:
        if graph.has_negative_weights():
            raise GraphError("delta-stepping requires non-negative weights")
        self.graph = graph
        self.device = device or Device()
        if delta is None:
            # Mean weight is the usual heuristic bucket width.
            delta = float(graph.weights.mean()) if graph.num_edges else 1.0
        if delta <= 0:
            raise GraphError("delta must be positive")
        self.delta = delta

    def run(self, source: int) -> SSSPResult:
        """Compute distances from ``source``."""
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise TraversalError(f"source {source} out of range [0, {n})")
        offsets = self.graph.graph.row_offsets
        indices = self.graph.graph.col_indices
        weights = self.graph.weights
        mem = self.device.memory

        dist = np.full(n, UNREACHABLE)
        dist[source] = 0.0
        record = RunRecord()
        counters = record.counters
        bucket_index = 0
        settled_below = 0.0
        iteration = 0
        while True:
            in_bucket = np.flatnonzero(
                (dist >= settled_below) & (dist < settled_below + self.delta)
            ).astype(VERTEX_DTYPE)
            if in_bucket.size == 0:
                finite = np.isfinite(dist) & (dist >= settled_below + self.delta)
                if not finite.any():
                    break
                # Jump to the bucket holding the nearest unsettled vertex.
                nearest = float(dist[finite].min())
                bucket_index = int(nearest // self.delta)
                settled_below = bucket_index * self.delta
                continue

            frontier = in_bucket
            while frontier.size:
                starts = offsets[frontier]
                widths = offsets[frontier + 1] - starts
                total = int(widths.sum())
                if total == 0:
                    break
                from repro.util import expand_ranges

                slots = expand_ranges(starts, widths)
                nbrs = indices[slots]
                cand = np.repeat(dist[frontier], widths) + weights[slots]
                improved = cand < dist[nbrs]
                counters.inspections += total
                counters.edges_traversed += total
                loads = mem.adjacency_transactions(widths)
                ld_txn, ld_req = mem.coalesced_transactions(nbrs, 8)
                loads += ld_txn + mem.stream_transactions(frontier.size * 8)
                upd = nbrs[improved]
                st_txn, st_req = mem.coalesced_transactions(upd, 8)
                counters.global_load_transactions += loads
                counters.global_store_transactions += st_txn
                counters.global_load_requests += ld_req
                counters.global_store_requests += st_req
                counters.atomic_operations += int(np.unique(upd).size)
                instructions = total * 8 + int(frontier.size) * 6
                counters.instructions += instructions
                counters.levels += 1
                record.append(
                    LevelRecord(
                        depth=iteration,
                        direction="td",
                        load_transactions=loads,
                        store_transactions=st_txn,
                        atomics=int(np.unique(upd).size),
                        instructions=instructions,
                        threads=int(frontier.size),
                        frontier_size=int(frontier.size),
                    )
                )
                iteration += 1
                if not improved.any():
                    break
                np.minimum.at(dist, upd, cand[improved])
                # Re-relax vertices that re-entered the current bucket.
                frontier = np.unique(upd)
                in_current = (dist[frontier] >= settled_below) & (
                    dist[frontier] < settled_below + self.delta
                )
                frontier = frontier[in_current].astype(VERTEX_DTYPE)

            bucket_index += 1
            settled_below = bucket_index * self.delta
            if iteration > 4 * n + 8:
                raise TraversalError("delta-stepping failed to converge")

        counters.kernel_launches += 1
        seconds = self.device.cost.kernel_time(record.levels)
        return SSSPResult(source, dist, record, seconds)


def concurrent_dijkstra(
    graph: WeightedCSRGraph, sources: Sequence[int]
) -> np.ndarray:
    """Stacked exact distances, one row per source (MSSP reference)."""
    return np.stack([dijkstra(graph, int(s)) for s in sources])
