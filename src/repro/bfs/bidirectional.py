"""Bidirectional BFS for point-to-point distance queries.

The reachability application (section 8.7) answers "is t within k hops
of s" from a precomputed index; when no index exists, the standard
online alternative is meet-in-the-middle search — expand the smaller of
the two frontiers (forward from s, backward from t) until they touch.
On small-world graphs this visits O(sqrt) of what a full BFS does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.util import gather_neighbors


@dataclass
class MeetResult:
    """Outcome of a bidirectional search."""

    source: int
    target: int
    #: Shortest-path hop count, or -1 when unreachable.
    distance: int
    #: Vertex where the frontiers met (-1 when unreachable).
    meeting_vertex: int
    #: Vertices whose statuses were written (work measure).
    visited: int

    @property
    def reachable(self) -> bool:
        return self.distance >= 0


def bidirectional_distance(
    graph: CSRGraph, source: int, target: int, max_depth: Optional[int] = None
) -> MeetResult:
    """Hop distance from ``source`` to ``target`` by meeting in the middle.

    Expands the cheaper frontier each round — forward over out-edges,
    backward over in-edges — and stops at the first meeting, which on a
    level-synchronized expansion yields the exact shortest distance.
    """
    n = graph.num_vertices
    for v in (source, target):
        if not 0 <= v < n:
            raise TraversalError(f"vertex {v} out of range [0, {n})")
    if source == target:
        return MeetResult(source, target, 0, source, 1)

    rev = graph.reverse()
    fwd_depth = np.full(n, -1, dtype=np.int32)
    bwd_depth = np.full(n, -1, dtype=np.int32)
    fwd_depth[source] = 0
    bwd_depth[target] = 0
    fwd_frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    bwd_frontier = np.asarray([target], dtype=VERTEX_DTYPE)
    fwd_level = 0
    bwd_level = 0
    best = -1
    meeting = -1

    while fwd_frontier.size and bwd_frontier.size:
        if max_depth is not None and fwd_level + bwd_level >= max_depth:
            break
        # Expand the side with less pending edge work.
        fwd_cost = int(graph.out_degrees()[fwd_frontier].sum())
        bwd_cost = int(rev.out_degrees()[bwd_frontier].sum())
        if fwd_cost <= bwd_cost:
            fwd_frontier, fwd_level = _expand(
                graph, fwd_frontier, fwd_depth, fwd_level
            )
            touched = fwd_frontier
        else:
            bwd_frontier, bwd_level = _expand(
                rev, bwd_frontier, bwd_depth, bwd_level
            )
            touched = bwd_frontier
        hits = touched[
            (fwd_depth[touched] >= 0) & (bwd_depth[touched] >= 0)
        ]
        if hits.size:
            distances = fwd_depth[hits] + bwd_depth[hits]
            idx = int(np.argmin(distances))
            best = int(distances[idx])
            meeting = int(hits[idx])
            break

    visited = int(np.count_nonzero(fwd_depth >= 0)) + int(
        np.count_nonzero(bwd_depth >= 0)
    )
    return MeetResult(source, target, best, meeting, visited)


def _expand(graph: CSRGraph, frontier: np.ndarray, depth: np.ndarray, level: int):
    """One top-down level; returns the new frontier and level."""
    _, neighbors = gather_neighbors(graph, frontier)
    fresh = np.unique(neighbors[depth[neighbors] < 0]).astype(VERTEX_DTYPE)
    depth[fresh] = level + 1
    return fresh, level + 1
