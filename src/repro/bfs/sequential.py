"""Sequential concurrent-BFS baseline: run the instances one by one.

This is the paper's "Sequential" bar in figure 15 — state-of-the-art
single-source BFS (Enterprise-style) executed once per source, each run
owning the whole device.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.bfs.single import SingleBFS
from repro.core.result import ConcurrentResult
from repro.plan.policy import DirectionPolicy, Policy


class SequentialConcurrentBFS:
    """Run ``i`` BFS instances back-to-back on one device."""

    name = "sequential"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self.device = device or Device()
        self.engine = SingleBFS(graph, self.device, policy, planner=planner)

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from every source sequentially; times add up."""
        sources = [int(s) for s in sources]
        counters = ProfilerCounters()
        total_seconds = 0.0
        depths = [] if store_depths else None
        for source in sources:
            result = self.engine.run(source, max_depth=max_depth)
            total_seconds += result.seconds
            counters.merge(result.record.counters)
            if depths is not None:
                depths.append(result.depths)
        matrix = np.stack(depths) if depths else None
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=total_seconds,
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
        )
