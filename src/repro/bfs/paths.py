"""Shortest-path reconstruction from BFS depth arrays.

The engines output depth arrays rather than explicit parent pointers
(the bitwise status array stores one *bit* per vertex-instance, so
parents are not materialized).  A shortest path can nevertheless be
reconstructed in O(path length x degree): from the target, repeatedly
step to any in-neighbor exactly one level shallower — such a neighbor
always exists for a valid BFS assignment (rule 3 of
:mod:`repro.bfs.validate`).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph


def extract_path(
    graph: CSRGraph, source: int, depths: np.ndarray, target: int
) -> List[int]:
    """One shortest path ``source -> ... -> target`` as a vertex list.

    ``depths`` must be the BFS depth array from ``source`` on ``graph``
    (as produced by any engine).  Raises
    :class:`~repro.errors.TraversalError` when the target is
    unreachable or the depth array is inconsistent.
    """
    n = graph.num_vertices
    depths = np.asarray(depths)
    if depths.shape != (n,):
        raise TraversalError(f"depth array shape {depths.shape} != ({n},)")
    if not 0 <= target < n:
        raise TraversalError(f"target {target} out of range [0, {n})")
    if depths[source] != 0:
        raise TraversalError(
            f"depths[{source}] = {depths[source]}; not a depth array "
            f"for source {source}"
        )
    if depths[target] < 0:
        raise TraversalError(f"{target} is unreachable from {source}")

    rev = graph.reverse()
    path = [int(target)]
    current = int(target)
    while depths[current] > 0:
        wanted = depths[current] - 1
        parents = rev.neighbors(current)
        shallower = parents[depths[parents] == wanted]
        if shallower.size == 0:
            raise TraversalError(
                f"vertex {current} at depth {int(depths[current])} has no "
                f"in-neighbor at depth {int(wanted)}: inconsistent depths"
            )
        current = int(shallower[0])
        path.append(current)
    if current != source:
        raise TraversalError(
            f"walk ended at {current}, not the source {source}"
        )
    path.reverse()
    return path


def path_length(
    graph: CSRGraph, source: int, depths: np.ndarray, target: int
) -> int:
    """Number of edges on a shortest path, or -1 when unreachable."""
    depths = np.asarray(depths)
    if not 0 <= target < graph.num_vertices:
        raise TraversalError(f"target {target} out of range")
    return int(depths[target])


def all_shortest_path_counts(graph: CSRGraph, source: int) -> np.ndarray:
    """Number of distinct shortest paths from ``source`` to each vertex.

    The sigma values of Brandes' algorithm, exposed directly: useful
    for verifying betweenness and for path-diversity analysis.
    """
    from repro.bfs.reference import reference_bfs
    from repro.util import gather_neighbors

    depths = reference_bfs(graph, source)
    sigma = np.zeros(graph.num_vertices, dtype=np.float64)
    sigma[source] = 1.0
    max_depth = int(depths.max()) if depths.size else 0
    for level in range(max_depth):
        frontier = np.flatnonzero(depths == level)
        if frontier.size == 0:
            break
        srcs, nbrs = gather_neighbors(graph, frontier)
        tree = depths[nbrs] == level + 1
        np.add.at(sigma, nbrs[tree], sigma[srcs[tree]])
    return sigma
