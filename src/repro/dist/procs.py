"""Process backend of the partitioned engine.

One worker process per partition: each attaches its published partition
(:func:`repro.dist.partition.attach_partition`) and runs the *same*
:class:`~repro.dist.engine.PartitionState` the inline backend uses, so
the two backends cannot diverge.  The parent drives the level loop in
lock step —

``("init", epoch, attempt, group_size)`` →
``("apply", epoch, level, payloads)`` / ``("expand", epoch, attempt,
level, fmt, vertices, masks)`` alternating per level →
``("collect", epoch)`` —

and gathers one reply per partition per step off a shared result queue.
``epoch`` bumps on every group attempt, so stragglers from an aborted
attempt are identified and dropped by epoch alone (the exec backend's
staleness rule).  A worker death surfaces as :class:`PartitionCrash`;
the engine retries the whole group from level 0 after respawning the
partition's worker within the :class:`~repro.exec.faults.FaultPolicy`
respawn budget — restarts are safe because the traversal is
deterministic, so a re-run is bit-identical.

:class:`DistFaultPlan` injects deterministic crashes for tests: worker
``part_id`` kills itself (``os._exit``) while expanding a given level
for the plan's leading attempts, mirroring
:class:`~repro.exec.faults.FaultPlan`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutorError
from repro.exec.faults import CRASH_EXIT_CODE, FaultPolicy
from repro.exec.shm import shared_memory_available
from repro.dist.partition import (
    PartitionHandle,
    PartitionSet,
    attach_partition,
    publish_partition,
    release_partition,
)

#: Seconds the parent blocks on the result queue per poll; bounds crash
#: detection latency.
_POLL_SECONDS = 0.05


class PartitionCrash(Exception):
    """Internal signal: a partition worker died mid-step.  The engine
    translates it into retry/respawn/degrade per the fault policy."""

    def __init__(self, part_id: int, detail: str) -> None:
        super().__init__(f"partition {part_id} worker died ({detail})")
        self.part_id = part_id
        self.detail = detail


@dataclass(frozen=True)
class DistFaultPlan:
    """Deterministic crash injection for partition workers.

    ``crash[part_id]`` kills that partition's worker during its
    ``expand`` of ``level`` for the given number of *leading group
    attempts* — attempt numbers beyond the count run clean, exactly
    like :class:`~repro.exec.faults.FaultPlan`.
    """

    crash: Mapping[int, int] = field(default_factory=dict)
    level: int = 1

    def apply(self, part_id: int, level: int, attempt: int) -> None:
        if level == self.level and attempt < self.crash.get(part_id, 0):
            os._exit(CRASH_EXIT_CODE)

    @property
    def empty(self) -> bool:
        return not self.crash


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def partition_worker_main(
    part_id: int,
    handle: PartitionHandle,
    own_bounds: np.ndarray,
    task_queue,
    result_queue,
    fault_plan: Optional[DistFaultPlan],
) -> None:
    """Worker loop: attach the partition, serve steps until the ``None``
    sentinel."""
    from repro.dist.engine import PartitionState

    plan = fault_plan or DistFaultPlan()
    attached = attach_partition(handle)
    state = PartitionState(attached.partition, own_bounds)
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            kind, epoch = message[0], message[1]
            try:
                if kind == "init":
                    state.init_group(message[3])
                    result_queue.put(("ready", part_id, epoch))
                elif kind == "expand":
                    _, _, attempt, level, fmt, vertices, masks = message
                    plan.apply(part_id, level, attempt)
                    payloads, edges = state.expand(vertices, masks, fmt)
                    result_queue.put(
                        ("updates", part_id, epoch, payloads, edges)
                    )
                elif kind == "apply":
                    _, _, level, payloads = message
                    new_vertices, new_masks = state.apply(level, payloads)
                    result_queue.put(
                        ("new", part_id, epoch, new_vertices, new_masks)
                    )
                elif kind == "collect":
                    result_queue.put(
                        ("depths", part_id, epoch, state.collect())
                    )
                else:  # pragma: no cover - protocol error
                    raise ExecutorError(f"unknown step {kind!r}")
            except Exception as exc:
                result_queue.put(
                    (
                        "error",
                        part_id,
                        epoch,
                        str(exc),
                        traceback_mod.format_exc(),
                    )
                )
    finally:
        attached.close()


# ----------------------------------------------------------------------
# Parent-side backend
# ----------------------------------------------------------------------
class _PartitionWorker:
    def __init__(self, part_id: int, process, task_queue) -> None:
        self.part_id = part_id
        self.process = process
        self.task_queue = task_queue

    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessBackend:
    """One worker per partition over shared-memory partition segments."""

    kind = "process"

    def __init__(
        self,
        pset: PartitionSet,
        faults: Optional[FaultPolicy] = None,
        fault_plan: Optional[DistFaultPlan] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if not shared_memory_available():  # pragma: no cover - exotic
            raise ExecutorError(
                "process backend needs multiprocessing.shared_memory"
            )
        self.pset = pset
        self.faults = faults or FaultPolicy()
        self.fault_plan = fault_plan
        self._respawns_left = self.faults.respawn_limit
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: List[PartitionHandle] = [
            publish_partition(p) for p in pset.parts
        ]
        self._result_queue = self._ctx.Queue()
        self._workers: Dict[int, _PartitionWorker] = {}
        self._epoch = 0
        self._closed = False
        for part_id in range(pset.num_partitions):
            self._spawn(part_id)

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, part_id: int) -> None:
        task_queue = (
            self._workers[part_id].task_queue
            if part_id in self._workers
            else self._ctx.Queue()
        )
        process = self._ctx.Process(
            target=partition_worker_main,
            args=(
                part_id,
                self._handles[part_id],
                self.pset.own_bounds,
                task_queue,
                self._result_queue,
                self.fault_plan,
            ),
            daemon=True,
            name=f"repro-dist-{part_id}",
        )
        process.start()
        self._workers[part_id] = _PartitionWorker(part_id, process, task_queue)

    def respawn(self, part_id: int) -> bool:
        """Replace a dead partition worker within the respawn budget."""
        if self._respawns_left <= 0:
            return False
        self._respawns_left -= 1
        worker = self._workers.get(part_id)
        if worker is not None and worker.alive():  # pragma: no cover
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        self._spawn(part_id)
        return True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.task_queue.put(None)
            except Exception:  # pragma: no cover
                pass
        deadline = time.perf_counter() + 2.0
        for worker in self._workers.values():
            worker.process.join(
                timeout=max(0.0, deadline - time.perf_counter())
            )
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers.values():
            try:
                worker.task_queue.close()
            except Exception:  # pragma: no cover
                pass
        self._workers = {}
        # Partition payloads travel inline (plain pickles), so draining
        # is only about emptying the queue, not reclaiming segments.
        while True:
            try:
                self._result_queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
        try:
            self._result_queue.close()
        except Exception:  # pragma: no cover
            pass
        for handle in self._handles:
            release_partition(handle)
        self._handles = []

    # -- lock-step protocol --------------------------------------------
    def _broadcast(self, make_message) -> None:
        for part_id in sorted(self._workers):
            self._workers[part_id].task_queue.put(make_message(part_id))

    def _gather(self, expected_kind: str) -> List[Tuple]:
        want = self.pset.num_partitions
        replies: Dict[int, Tuple] = {}
        while len(replies) < want:
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                self._check_liveness(replies)
                continue
            kind, part_id, epoch = message[0], message[1], message[2]
            if epoch != self._epoch:
                continue
            if kind == "error":
                raise ExecutorError(
                    f"partition {part_id} step failed: {message[3]}\n"
                    f"{message[4]}"
                )
            if kind != expected_kind:  # pragma: no cover - protocol bug
                raise ExecutorError(
                    f"expected {expected_kind!r} reply; got {kind!r}"
                )
            replies[part_id] = message
        return [replies[p] for p in range(want)]

    def _check_liveness(self, replies: Dict[int, Tuple]) -> None:
        for part_id, worker in self._workers.items():
            if part_id not in replies and not worker.alive():
                raise PartitionCrash(
                    part_id, f"exitcode {worker.process.exitcode}"
                )

    # -- backend surface (mirrors _InlineBackend) ----------------------
    def init_group(self, group_size: int, attempt: int) -> None:
        if self._closed:
            raise ExecutorError("backend is closed")
        self._epoch += 1
        self._broadcast(
            lambda part_id: ("init", self._epoch, attempt, group_size)
        )
        self._gather("ready")

    def expand(
        self,
        level: int,
        attempt: int,
        fmt: str,
        frontier_slices: Sequence[Tuple[np.ndarray, np.ndarray]],
    ):
        self._broadcast(
            lambda part_id: (
                "expand",
                self._epoch,
                attempt,
                level,
                fmt,
                frontier_slices[part_id][0],
                frontier_slices[part_id][1],
            )
        )
        return [
            (payloads, edges)
            for _, _, _, payloads, edges in self._gather("updates")
        ]

    def apply(self, level: int, payloads_per_part) -> List[Tuple]:
        self._broadcast(
            lambda part_id: (
                "apply",
                self._epoch,
                level,
                payloads_per_part[part_id],
            )
        )
        return [
            (vertices, masks)
            for _, _, _, vertices, masks in self._gather("new")
        ]

    def collect(self) -> List[np.ndarray]:
        self._broadcast(lambda part_id: ("collect", self._epoch))
        return [block for _, _, _, block in self._gather("depths")]
