"""Level-synchronous partitioned multi-source BFS.

:class:`PartitionedEngine` traverses graphs that no single worker holds
whole: the CSR is split by :class:`~repro.dist.partition.GraphPartitioner`,
every partition keeps the vertex state (one ``uint64`` status word and
one ``int32`` depth row per owned vertex) for its owner range, and each
level runs as

1. **expand** — every edge block scans its slice of the joint frontier
   and aggregates ``(destination, instance-mask)`` updates;
2. **exchange** — updates are encoded in the level's resolved wire
   format (:mod:`repro.dist.exchange`) and routed to the destination
   owners (plus, under the 2D layout, the new frontier is broadcast to
   the sibling edge blocks of each owner's grid row);
3. **apply** — owners OR the updates into their status words; bits not
   previously visited become depth ``level + 1`` and form the next
   joint frontier.

Depths depend only on the edge set, so the merged ``(group, |V|)``
matrix is bit-identical to serial :meth:`repro.core.engine.IBFS.run`
for every layout, partition count, wire format, and crash/retry
interleaving.  What the knobs change is the *communication*: per-level
bytes and messages are accounted exactly and priced by the
:mod:`repro.dist.comm` cost models, and the per-level format choice is
recorded into the run's :class:`~repro.plan.types.RunPlan` (via the
``exchange`` field of :class:`~repro.plan.types.LevelDecision`) so a
replay re-sends exactly the recorded bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraversalError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import ProfilerCounters
from repro.kernels.bookkeeping import unpack_lane_bits
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.result import ConcurrentResult, GroupStats
from repro.exec.faults import FaultLog, FaultPolicy, crash_error
from repro.plan.types import Direction, LevelDecision, RunPlan
from repro.dist.comm import CommCostModel
from repro.dist.exchange import (
    SPARSE_ENTRY_BYTES,
    ExchangePayload,
    ExchangePolicy,
    encode_updates,
    merge_payload,
)
from repro.dist.partition import (
    BALANCE_MODES,
    LAYOUTS,
    GraphPartition,
    GraphPartitioner,
    PartitionSet,
    check_partition_cover,
)

#: Depth value of unreached vertices (matches the serial engines).
UNVISITED = -1

#: Hard instance cap: one uint64 status word per vertex.
MAX_GROUP_SIZE = 64

_BACKENDS = ("inline", "process")


@dataclass(frozen=True)
class DistConfig:
    """Configuration of a :class:`PartitionedEngine`.

    ``group_size``/``groupby``/``groupby_config``/``seed`` mirror
    :class:`~repro.core.engine.IBFSConfig` so source grouping stays
    identical to the serial engine; ``group_size`` is additionally
    clamped to :data:`MAX_GROUP_SIZE` (one status word per vertex).
    """

    num_partitions: int = 2
    layout: str = "1d"
    balance: str = "edges"
    #: Default wire format ("auto" lets :class:`ExchangePolicy` decide
    #: per level from the previous level's frontier).
    exchange: str = "auto"
    exchange_threshold: float = 1.0
    group_size: int = MAX_GROUP_SIZE
    groupby: bool = True
    groupby_config: GroupByConfig = GroupByConfig()
    seed: int = 0
    #: ``"inline"`` runs every partition in this process; ``"process"``
    #: spawns one worker per partition over shared-memory partitions.
    backend: str = "inline"
    faults: FaultPolicy = FaultPolicy()
    #: Deterministic crash injection for the process backend
    #: (:class:`repro.dist.procs.DistFaultPlan`).
    fault_plan: Optional[object] = None
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise TraversalError("num_partitions must be positive")
        if self.layout not in LAYOUTS:
            raise TraversalError(
                f"layout must be one of {LAYOUTS}; got {self.layout!r}"
            )
        if self.balance not in BALANCE_MODES:
            raise TraversalError(
                f"balance must be one of {BALANCE_MODES}; "
                f"got {self.balance!r}"
            )
        if self.backend not in _BACKENDS:
            raise TraversalError(
                f"backend must be one of {_BACKENDS}; got {self.backend!r}"
            )
        if self.group_size <= 0:
            raise TraversalError("group_size must be positive")
        # Delegate format/threshold validation.
        ExchangePolicy(self.exchange, self.exchange_threshold)


# ----------------------------------------------------------------------
# Per-partition state and compute (shared by both backends)
# ----------------------------------------------------------------------
class PartitionState:
    """One partition's vertex state plus its edge-block compute.

    The same class backs the inline backend and the process workers, so
    the two backends cannot diverge in results or byte accounting.
    """

    def __init__(self, part: GraphPartition, own_bounds: np.ndarray) -> None:
        self.part = part
        self.own_bounds = np.asarray(own_bounds, dtype=np.int64)
        self._scratch = np.zeros(
            part.dst_stop - part.dst_start, dtype=np.uint64
        )
        self.group_size = 0
        self.visited: Optional[np.ndarray] = None
        self.depths: Optional[np.ndarray] = None

    # -- lifecycle -----------------------------------------------------
    def init_group(self, group_size: int) -> None:
        if not 1 <= group_size <= MAX_GROUP_SIZE:
            raise TraversalError(
                f"group size must be in [1, {MAX_GROUP_SIZE}]; "
                f"got {group_size}"
            )
        self.group_size = group_size
        own = self.part.own_size
        self.visited = np.zeros(own, dtype=np.uint64)
        self.depths = np.full((own, group_size), UNVISITED, dtype=np.int32)

    # -- expand --------------------------------------------------------
    def expand(
        self, vertices: np.ndarray, masks: np.ndarray, fmt: str
    ) -> Tuple[List[Tuple[int, ExchangePayload]], int]:
        """Scan this block's rows of the frontier slice and return the
        encoded per-owner payloads plus the number of edges scanned.

        ``vertices`` are global frontier ids within the block's source
        range; under the dense format a payload goes to *every* owner
        range overlapping the block's column band (the broadcast), under
        the sparse format only where updates exist.
        """
        part = self.part
        local = np.asarray(vertices, dtype=np.int64) - part.src_start
        ro = part.row_offsets
        starts = ro[local]
        counts = (ro[local + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        touched = np.empty(0, dtype=np.int64)
        if total:
            head = np.concatenate(([0], np.cumsum(counts[:-1])))
            flat = (
                np.repeat(starts, counts)
                + np.arange(total, dtype=np.int64)
                - np.repeat(head, counts)
            )
            dsts = part.col_indices[flat] - part.dst_start
            scratch = self._scratch
            np.bitwise_or.at(scratch, dsts, np.repeat(masks, counts))
            touched = np.flatnonzero(scratch)
        payloads: List[Tuple[int, ExchangePayload]] = []
        touched_global = touched + part.dst_start
        touched_masks = self._scratch[touched]
        owners = np.flatnonzero(
            (self.own_bounds[:-1] < part.dst_stop)
            & (self.own_bounds[1:] > part.dst_start)
        )
        for owner in owners:
            lo = max(int(self.own_bounds[owner]), part.dst_start)
            hi = min(int(self.own_bounds[owner + 1]), part.dst_stop)
            a = np.searchsorted(touched_global, lo)
            b = np.searchsorted(touched_global, hi)
            if fmt == "sparse" and a == b:
                continue
            payloads.append(
                (
                    int(owner),
                    encode_updates(
                        touched_global[a:b], touched_masks[a:b], lo, hi, fmt
                    ),
                )
            )
        if touched.size:
            self._scratch[touched] = 0
        return payloads, total

    # -- apply ---------------------------------------------------------
    def apply(
        self, level: int, payloads: Sequence[ExchangePayload]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge incoming updates; returns the newly discovered frontier
        slice (global vertex ids, instance masks).  ``level == -1``
        injects the sources (depth 0)."""
        part = self.part
        acc = np.zeros(part.own_size, dtype=np.uint64)
        for payload in payloads:
            merge_payload(payload, acc, part.own_start)
        new = acc & ~self.visited
        idx = np.flatnonzero(new)
        if idx.size:
            self.visited[idx] |= new[idx]
            bits = unpack_lane_bits(
                new[idx].reshape(-1, 1), self.group_size
            ).astype(bool)
            rows = self.depths[idx]
            rows[bits] = level + 1
            self.depths[idx] = rows
        return idx + part.own_start, new[idx]

    # -- collect -------------------------------------------------------
    def collect(self) -> np.ndarray:
        """The owned ``(own_size, group_size)`` int32 depth block."""
        return self.depths


class _InlineBackend:
    """All partitions in this process — the reference backend."""

    kind = "inline"

    def __init__(self, pset: PartitionSet) -> None:
        self.states = [
            PartitionState(p, pset.own_bounds) for p in pset.parts
        ]

    def init_group(self, group_size: int, attempt: int) -> None:
        for state in self.states:
            state.init_group(group_size)

    def expand(
        self,
        level: int,
        attempt: int,
        fmt: str,
        frontier_slices: Sequence[Tuple[np.ndarray, np.ndarray]],
    ):
        results = []
        for state, (vertices, masks) in zip(self.states, frontier_slices):
            results.append(state.expand(vertices, masks, fmt))
        return results

    def apply(
        self,
        level: int,
        payloads_per_part: Sequence[List[ExchangePayload]],
    ):
        return [
            state.apply(level, payloads)
            for state, payloads in zip(self.states, payloads_per_part)
        ]

    def collect(self) -> List[np.ndarray]:
        return [state.collect() for state in self.states]

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass
class LevelTrace:
    """Communication record of one executed level."""

    level: int
    fmt: str
    #: Touched destination vertices across all update payloads.
    entries: int
    #: Update wire bytes (dense broadcast or sparse pairs).
    update_bytes: int
    #: 2D frontier-broadcast bytes (0 under 1d).
    broadcast_bytes: int
    messages: int
    frontier_vertices: int
    frontier_edges: int
    edges_scanned: Tuple[int, ...]
    compute_seconds: float
    exchange_seconds: float

    @property
    def nbytes(self) -> int:
        return self.update_bytes + self.broadcast_bytes

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "fmt": self.fmt,
            "entries": self.entries,
            "update_bytes": self.update_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "bytes": self.nbytes,
            "messages": self.messages,
            "frontier_vertices": self.frontier_vertices,
            "frontier_edges": self.frontier_edges,
            "edges_scanned": list(self.edges_scanned),
            "compute_seconds": self.compute_seconds,
            "exchange_seconds": self.exchange_seconds,
        }


@dataclass
class DistStats:
    """Observability of one partitioned run (communication + faults)."""

    backend: str
    layout: str
    num_partitions: int
    groups: int = 0
    levels: List[LevelTrace] = field(default_factory=list)
    crashes: int = 0
    respawns: int = 0
    retries: int = 0
    degraded: bool = False
    wall_seconds: float = 0.0
    events: List[object] = field(default_factory=list)

    @property
    def bytes_total(self) -> int:
        return sum(t.nbytes for t in self.levels)

    @property
    def messages_total(self) -> int:
        return sum(t.messages for t in self.levels)

    def formats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.levels:
            out[t.fmt] = out.get(t.fmt, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "layout": self.layout,
            "num_partitions": self.num_partitions,
            "groups": self.groups,
            "bytes_total": self.bytes_total,
            "messages_total": self.messages_total,
            "formats": self.formats(),
            "crashes": self.crashes,
            "respawns": self.respawns,
            "retries": self.retries,
            "degraded": self.degraded,
            "wall_seconds": self.wall_seconds,
            "levels": [t.to_dict() for t in self.levels],
        }

    def publish(self, hub: Optional[obs_metrics.MetricsHub] = None) -> None:
        hub = hub if hub is not None else obs_metrics.get_hub()
        hub.counter(
            "exchange_bytes_total", "Frontier-exchange wire bytes"
        ).inc(self.bytes_total)
        hub.counter(
            "exchange_messages_total", "Frontier-exchange messages"
        ).inc(self.messages_total)
        hub.counter(
            "dist_levels_total", "Partitioned traversal levels executed"
        ).inc(len(self.levels))
        hub.counter(
            "dist_crashes_total", "Partition worker crashes observed"
        ).inc(self.crashes)
        hub.counter(
            "dist_respawns_total", "Partition workers respawned"
        ).inc(self.respawns)
        latency = hub.histogram(
            "exchange_level_seconds",
            "Modeled exchange seconds per traversal level",
        )
        for trace in self.levels:
            latency.observe(trace.exchange_seconds)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class PartitionedEngine:
    """Multi-source BFS over a partitioned graph (see module docs).

    Drop-in peer of :class:`~repro.core.engine.IBFS` for the serving
    layer: same ``run_group(group, max_depth, plan)`` /
    ``run(sources, ...)`` surface, same bit-identical depth matrices,
    and the same recorded-plan replay contract.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[DistConfig] = None,
        cost_model: Optional[object] = None,
    ) -> None:
        self.graph = graph
        self.config = config or DistConfig()
        self.partitioner = GraphPartitioner(
            graph,
            self.config.num_partitions,
            layout=self.config.layout,
            balance=self.config.balance,
        )
        self.partitions = self.partitioner.build()
        check_partition_cover(graph, self.partitions)
        self.cost_model = cost_model or CommCostModel()
        self.exchange_policy = ExchangePolicy(
            self.config.exchange, self.config.exchange_threshold
        )
        self._dense_bytes = self.partitions.dense_bytes_per_level()
        self._out_degrees = graph.out_degrees()
        self._backend = None
        self._closed = False
        #: Stats of the most recent run/run_group call.
        self.last_stats: Optional[DistStats] = None

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        suffix = "+groupby" if self.config.groupby else "+random"
        return (
            f"dist-{self.config.layout}x{self.config.num_partitions}{suffix}"
        )

    @property
    def backend(self) -> str:
        return self.config.backend

    def effective_group_size(self) -> int:
        """Configured N clamped by the one-status-word-per-vertex rule."""
        return min(self.config.group_size, MAX_GROUP_SIZE)

    def make_groups(self, sources: Sequence[int]) -> List[List[int]]:
        group_size = self.effective_group_size()
        if self.config.groupby:
            return group_sources(
                self.graph, sources, group_size, self.config.groupby_config
            )
        return random_groups(sources, group_size, self.config.seed)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "PartitionedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_backend(self):
        if self._closed:
            raise TraversalError("engine is closed")
        if self._backend is None:
            if self.config.backend == "process":
                from repro.dist.procs import ProcessBackend

                self._backend = ProcessBackend(
                    self.partitions,
                    faults=self.config.faults,
                    fault_plan=self.config.fault_plan,
                    start_method=self.config.start_method,
                )
            else:
                self._backend = _InlineBackend(self.partitions)
        return self._backend

    def _degrade_backend(self):
        """Process pool lost: finish on the inline backend (results are
        identical by construction)."""
        if self._backend is not None:
            self._backend.close()
        self._backend = _InlineBackend(self.partitions)
        return self._backend

    # ------------------------------------------------------------------
    def _validate_group(self, group: List[int]) -> None:
        if not group:
            raise TraversalError("a group needs at least one source")
        if len(set(group)) != len(group):
            raise TraversalError("group sources must be distinct")
        for s in group:
            if not 0 <= s < self.graph.num_vertices:
                raise TraversalError(f"source {s} out of range")
        capacity = self.effective_group_size()
        if len(group) > capacity:
            raise TraversalError(
                f"group of {len(group)} exceeds the effective group size "
                f"{capacity}"
            )

    def run_group(
        self,
        group: Sequence[int],
        max_depth: Optional[int] = None,
        plan: Optional[RunPlan] = None,
    ) -> ConcurrentResult:
        """Execute one pre-formed group across all partitions.

        ``plan`` replays a recorded run: each level's wire format comes
        from the plan's ``exchange`` fields instead of the policy, so
        the exchange re-sends exactly the recorded bytes.
        """
        group = [int(s) for s in group]
        self._validate_group(group)
        stats = DistStats(
            backend=self.config.backend,
            layout=self.config.layout,
            num_partitions=self.config.num_partitions,
        )
        result = self._run_group_with_retry(
            group, max_depth, plan, stats
        )
        stats.groups = 1
        self.last_stats = stats
        stats.publish()
        return result

    def _run_group_with_retry(
        self,
        group: List[int],
        max_depth: Optional[int],
        plan: Optional[RunPlan],
        stats: DistStats,
    ) -> ConcurrentResult:
        from repro.dist.procs import PartitionCrash

        policy = self.config.faults
        log = FaultLog()
        attempt = 0
        wall_start = time.perf_counter()
        try:
            while True:
                backend = self._ensure_backend()
                try:
                    return self._run_group_once(
                        backend, group, max_depth, plan, attempt, stats
                    )
                except PartitionCrash as crash:
                    stats.crashes += 1
                    log.record(
                        "crash",
                        task_id=0,
                        worker_id=crash.part_id,
                        attempt=attempt,
                        detail=crash.detail,
                    )
                    attempt += 1
                    if policy.fail_fast or policy.exhausted(attempt):
                        raise crash_error(
                            0, crash.part_id, attempt - 1, crash.detail
                        ) from None
                    stats.retries += 1
                    log.record("retry", task_id=0, attempt=attempt)
                    if backend.respawn(crash.part_id):
                        stats.respawns += 1
                        log.record("respawn", worker_id=crash.part_id)
                    else:
                        # Respawn budget exhausted: the remaining pool
                        # cannot cover every partition — degrade.
                        stats.degraded = True
                        log.record(
                            "degraded",
                            detail="partition pool lost; finishing inline",
                        )
                        self._degrade_backend()
        finally:
            stats.wall_seconds += time.perf_counter() - wall_start
            stats.events.extend(log.events)

    # ------------------------------------------------------------------
    def _run_group_once(
        self,
        backend,
        group: List[int],
        max_depth: Optional[int],
        plan: Optional[RunPlan],
        attempt: int,
        stats: DistStats,
    ) -> ConcurrentResult:
        pset = self.partitions
        n = self.graph.num_vertices
        group_size = len(group)
        tracer = obs_tracing.get_tracer()
        recorded = RunPlan(
            policy=plan.policy if plan is not None else self.exchange_policy.name,
            engine=self.name,
            group_size=group_size,
        )
        td = (Direction.TOP_DOWN,) * group_size

        with tracer.span(
            "dist.run_group",
            layout=self.config.layout,
            partitions=pset.num_partitions,
            backend=backend.kind,
            group_size=group_size,
            attempt=attempt,
            replay=plan is not None,
        ):
            backend.init_group(group_size, attempt)

            # Source injection: depth 0, not an exchange (no bytes).
            src_vertices = np.asarray(group, dtype=np.int64)
            src_masks = np.uint64(1) << np.arange(
                group_size, dtype=np.uint64
            )
            order = np.argsort(src_vertices, kind="stable")
            inject = self._bucket_by_owner(
                src_vertices[order], src_masks[order]
            )
            new_slices = backend.apply(-1, inject)

            counters = ProfilerCounters()
            traces: List[LevelTrace] = []
            jfq_sizes: List[int] = []
            per_level_sharing: List[float] = []
            td_sharing: List[Tuple[int, int]] = []
            seconds = 0.0
            level = 0
            while True:
                frontier_count = sum(
                    int(v.shape[0]) for v, _ in new_slices
                )
                if frontier_count == 0:
                    break
                if max_depth is not None and level >= max_depth:
                    break
                fmt = self._resolve_format(plan, level, new_slices)
                with tracer.span(
                    "exchange.level", level=level, fmt=fmt
                ) as span:
                    trace, new_slices = self._run_level(
                        backend, pset, level, attempt, fmt, new_slices
                    )
                    cost = self.cost_model.price_level(
                        trace.edges_scanned, trace.nbytes, trace.messages
                    )
                    trace.compute_seconds = cost.compute_seconds
                    trace.exchange_seconds = cost.exchange_seconds
                    if span is not None:
                        span.annotate(
                            bytes=trace.nbytes,
                            messages=trace.messages,
                            entries=trace.entries,
                            frontier=trace.frontier_vertices,
                            exchange_seconds=trace.exchange_seconds,
                        )
                seconds += cost.total_seconds
                traces.append(trace)
                recorded.append(
                    LevelDecision(directions=td, exchange=fmt)
                )
                counters.levels += 1
                counters.kernel_launches += pset.num_partitions
                counters.edges_traversed += sum(trace.edges_scanned)
                new_total = sum(int(v.shape[0]) for v, _ in new_slices)
                new_bits = self._popcount_slices(new_slices, group_size)
                counters.frontier_enqueues += new_bits
                counters.inspections += trace.entries
                jfq_sizes.append(new_total)
                per_level_sharing.append(
                    new_bits / new_total if new_total else 0.0
                )
                td_sharing.append((new_bits, new_total))
                level += 1

            blocks = backend.collect()
            matrix = np.full((group_size, n), UNVISITED, dtype=np.int32)
            for part, block in zip(pset.parts, blocks):
                matrix[:, part.own_start : part.own_stop] = np.asarray(
                    block, dtype=np.int32
                ).T

        stats.levels.extend(traces)
        shared = [s for s in per_level_sharing if s > 0]
        sharing_degree = (
            sum(shared) / len(shared) if shared else 0.0
        )
        gstats = GroupStats(
            sources=group,
            seconds=seconds,
            sharing_degree=sharing_degree,
            sharing_ratio=(
                sharing_degree / group_size if group_size else 0.0
            ),
            jfq_sizes=jfq_sizes,
            per_level_sharing=per_level_sharing,
            td_sharing=td_sharing,
            bu_sharing=[(0, 0) for _ in td_sharing],
            bottom_up_inspections=[0] * group_size,
            plan=recorded,
        )
        return ConcurrentResult(
            engine=self.name,
            sources=group,
            seconds=seconds,
            counters=counters,
            depths=matrix,
            num_vertices=n,
            groups=[gstats],
        )

    # ------------------------------------------------------------------
    def _resolve_format(
        self,
        plan: Optional[RunPlan],
        level: int,
        new_slices: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> str:
        if plan is not None and len(plan.decisions):
            decision = plan.decisions[min(level, len(plan.decisions) - 1)]
            if decision.exchange != "auto":
                return decision.exchange
        frontier_edges = 0
        for vertices, _ in new_slices:
            if vertices.size:
                frontier_edges += int(
                    self._out_degrees[vertices].sum()
                )
        return self.exchange_policy.decide(frontier_edges, self._dense_bytes)

    def _bucket_by_owner(
        self, vertices: np.ndarray, masks: np.ndarray
    ) -> List[List[ExchangePayload]]:
        """Sparse source-injection payloads per owning partition
        (``vertices`` must be sorted)."""
        pset = self.partitions
        out: List[List[ExchangePayload]] = [
            [] for _ in range(pset.num_partitions)
        ]
        cuts = np.searchsorted(vertices, pset.own_bounds)
        for p in range(pset.num_partitions):
            a, b = int(cuts[p]), int(cuts[p + 1])
            if a == b:
                continue
            part = pset.parts[p]
            out[p].append(
                encode_updates(
                    vertices[a:b],
                    masks[a:b],
                    part.own_start,
                    part.own_stop,
                    "sparse",
                )
            )
        return out

    def _run_level(
        self,
        backend,
        pset: PartitionSet,
        level: int,
        attempt: int,
        fmt: str,
        new_slices: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[LevelTrace, List[Tuple[np.ndarray, np.ndarray]]]:
        """Expand + exchange + apply for one level."""
        # Route the joint frontier to the edge blocks.  Owner ranges
        # refine row bands, so an owner's new vertices go to the blocks
        # of its own grid row — every sibling block beyond the owner
        # itself is a remote copy (the 2D frontier broadcast).
        frontier_vertices = 0
        frontier_edges = 0
        broadcast_bytes = 0
        broadcast_messages = 0
        per_row: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        for p, (vertices, masks) in enumerate(new_slices):
            if not vertices.size:
                continue
            count = int(vertices.shape[0])
            frontier_vertices += count
            frontier_edges += int(self._out_degrees[vertices].sum())
            grid_row = pset.parts[p].row
            per_row.setdefault(grid_row, []).append((vertices, masks))
            remote = pset.cols - 1
            broadcast_bytes += SPARSE_ENTRY_BYTES * count * remote
            broadcast_messages += remote
        frontier_slices: List[Tuple[np.ndarray, np.ndarray]] = []
        for part in pset.parts:
            chunks = per_row.get(part.row)
            if not chunks:
                frontier_slices.append(
                    (
                        np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.uint64),
                    )
                )
            elif len(chunks) == 1:
                frontier_slices.append(chunks[0])
            else:
                frontier_slices.append(
                    (
                        np.concatenate([c[0] for c in chunks]),
                        np.concatenate([c[1] for c in chunks]),
                    )
                )

        expanded = backend.expand(level, attempt, fmt, frontier_slices)

        update_bytes = 0
        update_messages = 0
        entries = 0
        edges_scanned: List[int] = []
        per_owner: List[List[ExchangePayload]] = [
            [] for _ in range(pset.num_partitions)
        ]
        for payloads, edges in expanded:
            edges_scanned.append(int(edges))
            for owner, payload in payloads:
                per_owner[owner].append(payload)
                update_bytes += payload.nbytes
                update_messages += 1
                entries += payload.entries

        new_slices = backend.apply(level, per_owner)
        trace = LevelTrace(
            level=level,
            fmt=fmt,
            entries=entries,
            update_bytes=update_bytes,
            broadcast_bytes=broadcast_bytes,
            messages=update_messages + broadcast_messages,
            frontier_vertices=frontier_vertices,
            frontier_edges=frontier_edges,
            edges_scanned=tuple(edges_scanned),
            compute_seconds=0.0,
            exchange_seconds=0.0,
        )
        return trace, list(new_slices)

    @staticmethod
    def _popcount_slices(
        slices: Sequence[Tuple[np.ndarray, np.ndarray]], group_size: int
    ) -> int:
        total = 0
        for _, masks in slices:
            if masks.size:
                total += int(
                    unpack_lane_bits(
                        masks.reshape(-1, 1), group_size
                    ).sum()
                )
        return total

    # ------------------------------------------------------------------
    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources; same grouping and bit-identical
        depth matrix as :meth:`repro.core.engine.IBFS.run`."""
        sources = [int(s) for s in sources]
        if not sources:
            raise TraversalError("at least one source is required")
        groups = self.make_groups(sources)
        counters = ProfilerCounters()
        group_stats: List[GroupStats] = []
        depth_rows = {} if store_depths else None
        merged = DistStats(
            backend=self.config.backend,
            layout=self.config.layout,
            num_partitions=self.config.num_partitions,
        )
        for group in groups:
            part = self.run_group(group, max_depth=max_depth)
            counters.merge(part.counters)
            group_stats.append(part.groups[0])
            run_stats = self.last_stats
            merged.groups += 1
            merged.levels.extend(run_stats.levels)
            merged.crashes += run_stats.crashes
            merged.respawns += run_stats.respawns
            merged.retries += run_stats.retries
            merged.degraded = merged.degraded or run_stats.degraded
            merged.wall_seconds += run_stats.wall_seconds
            merged.events.extend(run_stats.events)
            if depth_rows is not None:
                for row, source in enumerate(group):
                    depth_rows[source] = part.depths[row]
        self.last_stats = merged
        matrix = None
        if depth_rows is not None:
            matrix = np.stack([depth_rows[s] for s in sources])
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=sum(g.seconds for g in group_stats),
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
            groups=group_stats,
        )
