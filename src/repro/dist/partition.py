"""Graph partitioning for distributed traversal.

:class:`GraphPartitioner` splits one immutable :class:`~repro.graph.csr.CSRGraph`
into edge blocks following the two classical distributed-BFS
decompositions:

``"1d"``
    P contiguous vertex ranges; partition ``p`` owns its range's vertex
    state *and* every out-edge of those vertices (Buluç & Madduri's 1D
    row decomposition).
``"2d"``
    an R×C grid (R·C = P, R the largest factor ≤ √P); block ``(i, j)``
    holds the edges with source in row band ``i`` and destination in
    column band ``j``.  Vertex *state* stays 1D-owned: each row band is
    subdivided into C owner ranges, one per block of that grid row, so
    an owner's range is always inside its own row band and the union of
    all edge blocks is exactly the edge set — which is what keeps the
    merged depth matrix bit-identical to the serial engine under either
    layout.

Partitions are plain numpy slices for in-process use and are published
into shared memory for the process backend through the *same*
refcounted :mod:`repro.exec.shm` layer the group executor uses: each
partition's local CSR is wrapped in a (trusted, unvalidated) ``CSRGraph``
whose column indices stay global, so :func:`repro.exec.shm.publish_graph`
fingerprints, refcounts, and unlinks partition segments exactly like
whole-graph segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.exec.shm import (
    AttachedGraph,
    SharedGraphHandle,
    attach_graph,
    publish_graph,
    release_graph,
)

#: Supported decompositions.
LAYOUTS = ("1d", "2d")

#: Boundary balancing: ``"edges"`` places range boundaries so each
#: range carries a near-equal share of ``out_degree + 1`` weight (edge
#: work plus per-vertex state work); ``"vertices"`` splits the vertex
#: range evenly.
BALANCE_MODES = ("edges", "vertices")


def grid_shape(num_partitions: int) -> Tuple[int, int]:
    """``(rows, cols)`` of the 2D grid: rows is the largest divisor of
    ``num_partitions`` not exceeding its square root."""
    if num_partitions <= 0:
        raise GraphError("num_partitions must be positive")
    rows = 1
    for r in range(1, int(math.isqrt(num_partitions)) + 1):
        if num_partitions % r == 0:
            rows = r
    return rows, num_partitions // rows


def _even_bounds(start: int, stop: int, parts: int) -> np.ndarray:
    span = stop - start
    cuts = [start + (span * k) // parts for k in range(parts + 1)]
    return np.asarray(cuts, dtype=VERTEX_DTYPE)


def _weighted_bounds(
    cum_weights: np.ndarray, start: int, stop: int, parts: int
) -> np.ndarray:
    """Boundaries inside ``[start, stop)`` at near-equal cumulative
    weight; degenerates to the even split when the span has no weight."""
    lo, hi = float(cum_weights[start]), float(cum_weights[stop])
    if hi <= lo:
        return _even_bounds(start, stop, parts)
    targets = lo + (hi - lo) * np.arange(1, parts, dtype=np.float64) / parts
    inner = np.searchsorted(cum_weights[start : stop + 1], targets) + start
    bounds = np.concatenate(([start], inner, [stop])).astype(VERTEX_DTYPE)
    return np.maximum.accumulate(bounds)


@dataclass(frozen=True)
class GraphPartition:
    """One edge block plus the vertex-state range its worker owns.

    ``row_offsets``/``col_indices`` are the block's local CSR: row ``r``
    is global vertex ``src_start + r`` and column entries stay *global*
    vertex ids within ``[dst_start, dst_stop)``.
    """

    part_id: int
    #: Grid coordinates (1d: ``(part_id, 0)``).
    row: int
    col: int
    #: Edge-block source range (the block's CSR rows).
    src_start: int
    src_stop: int
    #: Edge-block destination range (column band).
    dst_start: int
    dst_stop: int
    #: Owned vertex-state range (always inside ``[src_start, src_stop)``).
    own_start: int
    own_stop: int
    num_vertices: int
    row_offsets: np.ndarray
    col_indices: np.ndarray

    @property
    def num_local_edges(self) -> int:
        return int(self.col_indices.shape[0])

    @property
    def own_size(self) -> int:
        return self.own_stop - self.own_start

    @property
    def src_size(self) -> int:
        return self.src_stop - self.src_start

    def local_graph(self) -> CSRGraph:
        """The block's CSR as a (trusted) graph object for publication;
        column ids remain global, so this is *not* a standalone graph."""
        return CSRGraph(self.row_offsets, self.col_indices, validate=False)

    def memory_bytes(self) -> int:
        """Bytes a worker holding this partition must keep resident."""
        return int(
            self.row_offsets.nbytes
            + self.col_indices.nbytes
            # Vertex state: visited word + depth lanes, priced like the
            # BSA (one uint64 status word and an int32 depth row slot).
            + self.own_size * (8 + 4)
        )


@dataclass(frozen=True)
class PartitionHandle:
    """Picklable description of one published partition: the shared
    local-CSR handle plus the range metadata that cannot ride on it."""

    part_id: int
    row: int
    col: int
    src_start: int
    src_stop: int
    dst_start: int
    dst_stop: int
    own_start: int
    own_stop: int
    num_vertices: int
    graph: SharedGraphHandle


@dataclass
class AttachedPartition:
    """A worker's zero-copy view of one published partition."""

    partition: GraphPartition
    _attached: AttachedGraph

    def close(self) -> None:
        self._attached.close()

    def __enter__(self) -> "AttachedPartition":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PartitionSet:
    """All partitions of one graph plus the routing tables the
    level-synchronous exchange needs (owner and row-band lookups)."""

    def __init__(
        self,
        layout: str,
        rows: int,
        cols: int,
        num_vertices: int,
        parts: List[GraphPartition],
        row_bounds: np.ndarray,
        col_bounds: np.ndarray,
    ) -> None:
        self.layout = layout
        self.rows = rows
        self.cols = cols
        self.num_vertices = num_vertices
        self.parts = parts
        #: Row-band boundaries, length ``rows + 1``.
        self.row_bounds = row_bounds
        #: Column-band boundaries, length ``cols + 1``.
        self.col_bounds = col_bounds
        #: Owner-range boundaries, length ``num_partitions + 1``;
        #: partition ``p`` owns ``[own_bounds[p], own_bounds[p + 1])``.
        self.own_bounds = np.asarray(
            [p.own_start for p in parts] + [parts[-1].own_stop],
            dtype=VERTEX_DTYPE,
        )

    @property
    def num_partitions(self) -> int:
        return len(self.parts)

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning partition id of each (global) vertex."""
        return np.searchsorted(self.own_bounds, vertices, side="right") - 1

    def grid_row_of(self, vertices: np.ndarray) -> np.ndarray:
        """Grid row (row band) containing each vertex."""
        return np.searchsorted(self.row_bounds, vertices, side="right") - 1

    def blocks_in_grid_row(self, grid_row: int) -> List[GraphPartition]:
        """The edge blocks that expand vertices of one row band."""
        return [p for p in self.parts if p.row == grid_row]

    def max_partition_bytes(self) -> int:
        return max(p.memory_bytes() for p in self.parts)

    def dense_bytes_per_level(self) -> int:
        """Wire bytes one dense-format exchange costs, independent of
        the frontier: every block ships one status word per vertex of
        each owner range overlapping its column band."""
        total = 0
        for p in self.parts:
            for q in self.parts:
                lo = max(p.dst_start, q.own_start)
                hi = min(p.dst_stop, q.own_stop)
                if hi > lo:
                    total += 8 * (hi - lo)
        return total


class GraphPartitioner:
    """Splits a CSR graph into 1D or 2D partitions (see module docs)."""

    def __init__(
        self,
        graph: CSRGraph,
        num_partitions: int,
        layout: str = "1d",
        balance: str = "edges",
    ) -> None:
        if num_partitions <= 0:
            raise GraphError("num_partitions must be positive")
        if layout not in LAYOUTS:
            raise GraphError(
                f"layout must be one of {LAYOUTS}; got {layout!r}"
            )
        if balance not in BALANCE_MODES:
            raise GraphError(
                f"balance must be one of {BALANCE_MODES}; got {balance!r}"
            )
        self.graph = graph
        self.num_partitions = num_partitions
        self.layout = layout
        self.balance = balance
        if layout == "1d":
            self.rows, self.cols = num_partitions, 1
        else:
            self.rows, self.cols = grid_shape(num_partitions)

    # ------------------------------------------------------------------
    def _bounds(self, start: int, stop: int, parts: int) -> np.ndarray:
        if self.balance == "vertices":
            return _even_bounds(start, stop, parts)
        weights = self.graph.out_degrees().astype(np.int64) + 1
        cum = np.concatenate(([0], np.cumsum(weights)))
        return _weighted_bounds(cum, start, stop, parts)

    def _slice_block(
        self, src_start: int, src_stop: int, dst_start: int, dst_stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        ro, ci = self.graph.row_offsets, self.graph.col_indices
        lo, hi = int(ro[src_start]), int(ro[src_stop])
        seg_offsets = ro[src_start : src_stop + 1] - lo
        seg_cols = ci[lo:hi]
        if dst_start == 0 and dst_stop == self.graph.num_vertices:
            return (
                np.ascontiguousarray(seg_offsets, dtype=VERTEX_DTYPE),
                np.ascontiguousarray(seg_cols, dtype=VERTEX_DTYPE),
            )
        mask = (seg_cols >= dst_start) & (seg_cols < dst_stop)
        kept = np.concatenate(
            ([0], np.cumsum(mask, dtype=VERTEX_DTYPE))
        )
        return (
            np.ascontiguousarray(kept[seg_offsets], dtype=VERTEX_DTYPE),
            np.ascontiguousarray(seg_cols[mask], dtype=VERTEX_DTYPE),
        )

    def build(self) -> PartitionSet:
        n = self.graph.num_vertices
        row_bounds = self._bounds(0, n, self.rows)
        col_bounds = (
            _even_bounds(0, n, 1)
            if self.cols == 1
            else self._bounds(0, n, self.cols)
        )
        parts: List[GraphPartition] = []
        for i in range(self.rows):
            src_start, src_stop = int(row_bounds[i]), int(row_bounds[i + 1])
            # Owner ranges refine the row band: block (i, j) owns the
            # j-th sub-range, so every owner expands its own vertices.
            own_bounds = self._bounds(src_start, src_stop, self.cols)
            for j in range(self.cols):
                dst_start, dst_stop = int(col_bounds[j]), int(col_bounds[j + 1])
                offsets, cols = self._slice_block(
                    src_start, src_stop, dst_start, dst_stop
                )
                parts.append(
                    GraphPartition(
                        part_id=i * self.cols + j,
                        row=i,
                        col=j,
                        src_start=src_start,
                        src_stop=src_stop,
                        dst_start=dst_start,
                        dst_stop=dst_stop,
                        own_start=int(own_bounds[j]),
                        own_stop=int(own_bounds[j + 1]),
                        num_vertices=n,
                        row_offsets=offsets,
                        col_indices=cols,
                    )
                )
        return PartitionSet(
            layout=self.layout,
            rows=self.rows,
            cols=self.cols,
            num_vertices=n,
            parts=parts,
            row_bounds=row_bounds,
            col_bounds=col_bounds,
        )


# ----------------------------------------------------------------------
# Shared-memory publication (process backend)
# ----------------------------------------------------------------------
def publish_partition(part: GraphPartition) -> PartitionHandle:
    """Publish one partition's local CSR through the refcounted shm
    layer; pair every call with :func:`release_partition`."""
    handle = publish_graph(part.local_graph(), include_reverse=False)
    return PartitionHandle(
        part_id=part.part_id,
        row=part.row,
        col=part.col,
        src_start=part.src_start,
        src_stop=part.src_stop,
        dst_start=part.dst_start,
        dst_stop=part.dst_stop,
        own_start=part.own_start,
        own_stop=part.own_stop,
        num_vertices=part.num_vertices,
        graph=handle,
    )


def release_partition(handle: PartitionHandle) -> None:
    release_graph(handle.graph)


def attach_partition(handle: PartitionHandle) -> AttachedPartition:
    """Map a published partition read-only in the current process."""
    attached = attach_graph(handle.graph)
    part = GraphPartition(
        part_id=handle.part_id,
        row=handle.row,
        col=handle.col,
        src_start=handle.src_start,
        src_stop=handle.src_stop,
        dst_start=handle.dst_start,
        dst_stop=handle.dst_stop,
        own_start=handle.own_start,
        own_stop=handle.own_stop,
        num_vertices=handle.num_vertices,
        row_offsets=attached.graph.row_offsets,
        col_indices=attached.graph.col_indices,
    )
    return AttachedPartition(partition=part, _attached=attached)


def check_partition_cover(
    graph: CSRGraph, partition_set: PartitionSet
) -> None:
    """Structural audit: the blocks must tile the edge set exactly and
    the owner ranges must tile the vertex set.  Raises ``GraphError``."""
    if int(partition_set.own_bounds[0]) != 0 or int(
        partition_set.own_bounds[-1]
    ) != graph.num_vertices:
        raise GraphError("owner ranges do not tile the vertex set")
    if np.any(np.diff(partition_set.own_bounds) < 0):
        raise GraphError("owner ranges are not monotone")
    total_edges = sum(p.num_local_edges for p in partition_set.parts)
    if total_edges != graph.num_edges:
        raise GraphError(
            f"edge blocks hold {total_edges} edges; graph has "
            f"{graph.num_edges}"
        )
    for p in partition_set.parts:
        if not (p.src_start <= p.own_start <= p.own_stop <= p.src_stop):
            raise GraphError(
                f"partition {p.part_id}: owner range escapes its row band"
            )
