"""Communication cost model for the partitioned engine.

Prices each level the way the executor's
:class:`~repro.exec.scheduler.CostModel` prices group compute: a simple
closed-form model whose terms are the quantities the engine actually
measured.  A level costs

``max_p(compute_p) + messages * latency + bytes / bandwidth``

— per-partition edge scans overlap, the exchange is a synchronous
barrier.  :class:`ClusterCommModel` is the simulated-device variant: it
schedules the per-partition compute durations on a
:class:`repro.gpusim.cluster.Cluster`, so fewer physical devices than
partitions (or a non-trivial scheduler) shows up as a longer simulated
level, exactly like the group-level cluster model of section 8.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.gpusim.cluster import Cluster, Scheduler, schedule_lpt
from repro.gpusim.config import DeviceConfig


@dataclass(frozen=True)
class LevelCost:
    """Priced outcome of one level."""

    compute_seconds: float
    exchange_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.exchange_seconds


@dataclass(frozen=True)
class CommCostModel:
    """Closed-form per-level pricing of partitioned traversal.

    Attributes
    ----------
    latency_seconds:
        Fixed cost per exchange message (the per-transfer launch/sync
        overhead that makes many small messages lose to one broadcast).
    bytes_per_second:
        Interconnect bandwidth the exchange bytes stream at.
    edges_per_second:
        Per-partition edge-scan throughput.
    base_level_seconds:
        Fixed per-partition per-level cost (kernel launch, frontier
        bookkeeping) so empty levels are not free.
    """

    latency_seconds: float = 2e-6
    bytes_per_second: float = 12e9
    edges_per_second: float = 2.5e9
    base_level_seconds: float = 5e-6

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0 or self.edges_per_second <= 0:
            raise SimulationError("cost-model rates must be positive")
        if self.latency_seconds < 0 or self.base_level_seconds < 0:
            raise SimulationError("cost-model overheads must be >= 0")

    def compute_seconds(self, edges_scanned: int) -> float:
        return self.base_level_seconds + edges_scanned / self.edges_per_second

    def exchange_seconds(self, nbytes: int, messages: int) -> float:
        return messages * self.latency_seconds + nbytes / self.bytes_per_second

    def price_level(
        self,
        per_partition_edges: Sequence[int],
        nbytes: int,
        messages: int,
    ) -> LevelCost:
        compute = max(
            (self.compute_seconds(e) for e in per_partition_edges),
            default=0.0,
        )
        return LevelCost(
            compute_seconds=compute,
            exchange_seconds=self.exchange_seconds(nbytes, messages),
        )


class ClusterCommModel:
    """Simulated-device pricing: per-partition compute durations are
    scheduled on a :class:`~repro.gpusim.cluster.Cluster` of
    ``num_devices`` simulated GPUs (partitions share devices when there
    are fewer devices than partitions) and the level's compute term is
    the cluster makespan."""

    def __init__(
        self,
        num_devices: int,
        comm: Optional[CommCostModel] = None,
        device_config: Optional[DeviceConfig] = None,
        scheduler: Scheduler = schedule_lpt,
    ) -> None:
        if num_devices <= 0:
            raise SimulationError("num_devices must be positive")
        self.num_devices = num_devices
        self.comm = comm or CommCostModel()
        self.cluster = Cluster(num_devices, device_config, scheduler)
        #: Per-device busy seconds accumulated across priced levels.
        self.device_seconds: List[float] = [0.0] * num_devices

    def price_level(
        self,
        per_partition_edges: Sequence[int],
        nbytes: int,
        messages: int,
    ) -> LevelCost:
        durations = [
            self.comm.compute_seconds(e) for e in per_partition_edges
        ]
        if durations:
            outcome = self.cluster.run(durations)
            compute = float(outcome.makespan)
            for device, busy in enumerate(outcome.device_times):
                self.device_seconds[device] += float(busy)
        else:
            compute = 0.0
        return LevelCost(
            compute_seconds=compute,
            exchange_seconds=self.comm.exchange_seconds(nbytes, messages),
        )
