"""Frontier-exchange wire formats and the per-level format policy.

Each level of the partitioned engine ends with an exchange: every edge
block ships the status-word updates it produced to the partitions that
own the destination vertices.  Two wire formats exist, and the choice
between them is the communication counterpart of the paper's
top-down/bottom-up direction switch:

``"sparse"``
    ``(vertex, mask)`` pairs — 16 bytes per *touched* destination
    vertex.  Cheap while frontiers are small (the first and last levels
    of any BFS), degenerate when most of a range is touched.
``"dense"``
    one ``uint64`` status word per vertex of the destination range —
    8 bytes per range vertex regardless of the frontier, the broadcast
    format that wins on the two or three peak levels of a small-world
    graph.

:class:`ExchangePolicy` picks the format *before* a level executes from
the previous level's observed frontier (mirroring how the direction
policy consumes trailing level stats), so the inline and process
backends — and a recorded plan replayed later — all resolve the same
format and account the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraversalError
from repro.plan.types import EXCHANGE_FORMATS

#: Bytes per sparse entry: one int64 vertex id + one uint64 mask word.
SPARSE_ENTRY_BYTES = 16
#: Bytes per dense slot: one uint64 mask word.
DENSE_SLOT_BYTES = 8


@dataclass(frozen=True)
class ExchangePayload:
    """One sender→owner message of status-word updates.

    ``start``/``stop`` bound the (global) destination vertices covered.
    Dense payloads carry ``words[stop - start]``; sparse payloads carry
    parallel ``vertices``/``masks`` arrays.  The payload *is* the wire
    format: the process backend pickles these across the result queues.
    """

    fmt: str
    start: int
    stop: int
    vertices: Optional[np.ndarray]
    masks: np.ndarray

    @property
    def nbytes(self) -> int:
        """Accounted wire bytes (headers excluded by convention)."""
        if self.fmt == "dense":
            return DENSE_SLOT_BYTES * (self.stop - self.start)
        return SPARSE_ENTRY_BYTES * int(self.masks.shape[0])

    @property
    def entries(self) -> int:
        """Touched destination vertices carried by this payload."""
        if self.fmt == "dense":
            return int(np.count_nonzero(self.masks))
        return int(self.masks.shape[0])


def encode_updates(
    vertices: np.ndarray,
    masks: np.ndarray,
    start: int,
    stop: int,
    fmt: str,
) -> ExchangePayload:
    """Encode aggregated ``(vertex, mask)`` updates for the owner range
    ``[start, stop)`` in the resolved wire format."""
    if fmt == "sparse":
        return ExchangePayload(
            fmt="sparse",
            start=start,
            stop=stop,
            vertices=np.ascontiguousarray(vertices, dtype=np.int64),
            masks=np.ascontiguousarray(masks, dtype=np.uint64),
        )
    if fmt == "dense":
        words = np.zeros(stop - start, dtype=np.uint64)
        if vertices.size:
            words[np.asarray(vertices, dtype=np.int64) - start] = masks
        return ExchangePayload(
            fmt="dense", start=start, stop=stop, vertices=None, masks=words
        )
    raise TraversalError(
        f"cannot encode exchange format {fmt!r} "
        f"(expected a resolved format, not 'auto')"
    )


def merge_payload(
    payload: ExchangePayload, acc: np.ndarray, acc_start: int
) -> None:
    """OR one payload into an owner's accumulator (indexed from
    ``acc_start``); both formats merge to identical accumulators."""
    if payload.fmt == "dense":
        lo = payload.start - acc_start
        acc[lo : lo + payload.masks.shape[0]] |= payload.masks
        return
    if payload.vertices is not None and payload.vertices.size:
        np.bitwise_or.at(
            acc, payload.vertices - acc_start, payload.masks
        )


@dataclass(frozen=True)
class ExchangePolicy:
    """Per-level wire-format selection.

    ``default`` forces one format for every level; ``"auto"`` predicts
    from the previous level's frontier: the coming exchange touches at
    most one destination per scanned frontier edge, so sparse is
    predicted to cost ``16 * frontier_edges`` bytes against the
    layout's fixed dense broadcast cost.  ``threshold`` scales the
    comparison (above 1.0 biases toward sparse).
    """

    default: str = "auto"
    threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.default not in EXCHANGE_FORMATS:
            raise TraversalError(
                f"exchange format must be one of {EXCHANGE_FORMATS}; "
                f"got {self.default!r}"
            )
        if self.threshold <= 0:
            raise TraversalError("threshold must be positive")

    def decide(self, frontier_edges: int, dense_bytes: int) -> str:
        """Resolved format for the level about to execute."""
        if self.default != "auto":
            return self.default
        sparse_estimate = SPARSE_ENTRY_BYTES * int(frontier_edges)
        if sparse_estimate <= self.threshold * dense_bytes:
            return "sparse"
        return "dense"

    @property
    def name(self) -> str:
        if self.default != "auto":
            return f"exchange-{self.default}"
        return f"exchange-auto@{self.threshold:g}"
