"""Partitioned distributed traversal (ROADMAP item 2).

Splits a CSR graph into 1D vertex-range or 2D edge-block partitions
(:mod:`repro.dist.partition`), runs level-synchronous multi-source BFS
across them with a per-level frontier exchange whose wire format —
dense bitmask vs sparse list — is chosen per level and recorded into
the run plan (:mod:`repro.dist.exchange`, :mod:`repro.dist.engine`),
and prices the communication with the cost models of
:mod:`repro.dist.comm`.  Depth matrices are bit-identical to serial
:meth:`repro.core.engine.IBFS.run` under every layout, partition
count, wire format, backend, and crash/retry interleaving.
"""

from repro.dist.comm import ClusterCommModel, CommCostModel, LevelCost
from repro.dist.engine import (
    MAX_GROUP_SIZE,
    DistConfig,
    DistStats,
    LevelTrace,
    PartitionedEngine,
    PartitionState,
)
from repro.dist.exchange import (
    ExchangePayload,
    ExchangePolicy,
    encode_updates,
    merge_payload,
)
from repro.dist.partition import (
    BALANCE_MODES,
    LAYOUTS,
    AttachedPartition,
    GraphPartition,
    GraphPartitioner,
    PartitionHandle,
    PartitionSet,
    attach_partition,
    check_partition_cover,
    grid_shape,
    publish_partition,
    release_partition,
)
from repro.dist.procs import DistFaultPlan, ProcessBackend

__all__ = [
    "AttachedPartition",
    "BALANCE_MODES",
    "ClusterCommModel",
    "CommCostModel",
    "DistConfig",
    "DistFaultPlan",
    "DistStats",
    "ExchangePayload",
    "ExchangePolicy",
    "GraphPartition",
    "GraphPartitioner",
    "LAYOUTS",
    "LevelCost",
    "LevelTrace",
    "MAX_GROUP_SIZE",
    "PartitionHandle",
    "PartitionSet",
    "PartitionState",
    "PartitionedEngine",
    "ProcessBackend",
    "attach_partition",
    "check_partition_cover",
    "encode_updates",
    "grid_shape",
    "merge_payload",
    "publish_partition",
    "release_partition",
]
