"""CPU-iBFS baseline: the full iBFS algorithm on the CPU cost model.

Section 7: "In principal iBFS can be implemented on CPUs.  Specifically,
joint traversal and GroupBy can follow the same design on GPUs.  One
notable difference is that iBFS would need atomic operation on CPUs for
the multi-thread bitwise operation."  The algorithm is identical to the
GPU engine (same depths, same inspections); only the device pricing
changes — fewer hardware threads, lower bandwidth, expensive atomics,
and per-thread context-switch overhead, which the paper reports as a
~2x deficit versus the GPU version.  Under the planner it runs the
full heuristic stack (:func:`repro.plan.presets.cpu_ibfs_policy`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import IBFS, IBFSConfig
from repro.core.result import ConcurrentResult
from repro.graph.csr import CSRGraph
from repro.gpusim.config import XEON_CPU
from repro.gpusim.device import Device
from repro.plan.policy import DirectionPolicy, Policy


class CPUiBFS:
    """iBFS (joint + GroupBy + bitwise) executed on a CPU device."""

    name = "cpu-ibfs"

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[IBFSConfig] = None,
        policy: Optional[DirectionPolicy] = None,
        planner: Optional[Policy] = None,
    ) -> None:
        self.graph = graph
        self._engine = IBFS(
            graph,
            config or IBFSConfig(group_size=64),
            device=Device(XEON_CPU),
            policy=policy,
            planner=planner,
        )

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources with the CPU cost model."""
        result = self._engine.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )
        result.engine = self.name
        return result
