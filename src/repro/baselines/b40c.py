"""B40C baseline: single-instance GPU BFS run once per source.

"B40C runs a single BFS instance on GPUs" (section 8.6) and is
top-down-only (no direction optimization), which is why the paper's
figure 22 and table 1 show it far behind even the sequential
Enterprise-style engine on power-law graphs.  Under the planner it is
the top-down-only :class:`~repro.plan.policy.FixedPolicy` preset over
the sequential single-source engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bfs.sequential import SequentialConcurrentBFS
from repro.core.result import ConcurrentResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.plan.presets import b40c_policy


class B40C:
    """Top-down-only single-instance GPU BFS, one kernel per source."""

    name = "b40c"

    def __init__(
        self,
        graph: CSRGraph,
        device: Optional[Device] = None,
    ) -> None:
        self._engine = SequentialConcurrentBFS(
            graph, device, planner=b40c_policy()
        )
        self.graph = graph

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from every source sequentially, top-down only."""
        result = self._engine.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )
        result.engine = self.name
        return result
