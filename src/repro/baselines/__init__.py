"""Comparator systems from the paper's related-work evaluation (section 8.6).

* :class:`MSBFS` — the CPU multi-source BFS of Then et al. [26]:
  bitwise statuses that reset every level (no early termination),
  one software thread per instance, random grouping;
* :class:`B40C` — Merrill et al.'s single-instance GPU BFS [29],
  top-down only, run once per source;
* :class:`SpMMBC` — the concurrent top-down-only GPU BFS used for
  regularized centrality [27] ("it does not support bottom-up BFS");
* :class:`CPUiBFS` — the full iBFS algorithm on the CPU cost model
  (section 7): same joint/GroupBy/bitwise design, but atomics are
  required and thread parallelism is far smaller.
"""

from repro.baselines.msbfs import MSBFS
from repro.baselines.b40c import B40C
from repro.baselines.spmm_bc import SpMMBC
from repro.baselines.cpu_ibfs import CPUiBFS

__all__ = ["MSBFS", "B40C", "SpMMBC", "CPUiBFS"]
