"""Shared execution loop for the grouped baseline systems.

Under the planner, the baselines differ mostly in *policy* — which
per-level decisions they are allowed to make — plus a device preset and
one or two engine-level switches.  What used to be four forked
traversal loops is now one helper: partition sources into random
groups, run each group through a traversal engine, and aggregate the
per-group stats into a :class:`~repro.core.result.ConcurrentResult`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.groupby import random_groups
from repro.core.result import ConcurrentResult, GroupStats
from repro.gpusim.counters import ProfilerCounters


def run_random_groups(
    engine,
    engine_name: str,
    num_vertices: int,
    sources: Sequence[int],
    group_size: int,
    seed: int,
    max_depth: Optional[int] = None,
    store_depths: bool = True,
) -> ConcurrentResult:
    """Run ``sources`` through ``engine.run_group`` in random groups.

    ``engine`` is any group traversal engine returning
    ``(depths, record, stats)`` (the :class:`BitwiseTraversal` /
    :class:`JointTraversal` contract).  Groups execute serially;
    simulated seconds add up.
    """
    sources = [int(s) for s in sources]
    groups = random_groups(sources, group_size, seed)
    counters = ProfilerCounters()
    group_stats: List[GroupStats] = []
    depth_rows = {} if store_depths else None
    for group in groups:
        depths, record, stats = engine.run_group(group, max_depth=max_depth)
        counters.merge(record.counters)
        group_stats.append(stats)
        if depth_rows is not None:
            for row, source in enumerate(group):
                depth_rows[source] = depths[row]
    matrix = None
    if depth_rows is not None:
        matrix = np.stack([depth_rows[s] for s in sources])
    return ConcurrentResult(
        engine=engine_name,
        sources=sources,
        seconds=sum(g.seconds for g in group_stats),
        counters=counters,
        depths=matrix,
        num_vertices=num_vertices,
        groups=group_stats,
    )
