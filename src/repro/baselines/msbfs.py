"""MS-BFS baseline (Then et al., VLDB 2015) on the CPU cost model.

Faithful to how the iBFS paper characterizes it (sections 1, 6, 9):

* bitwise per-instance statuses, but the frontier ("visit") array is
  **reset at each level**, so the status array does not remember all
  visited vertices and bottom-up **cannot terminate early**;
* a single software thread runs each BFS instance, so no atomics are
  needed, but only ``N`` threads are ever active;
* instances are grouped randomly (no GroupBy).

Under the planner this baseline is a policy preset
(:func:`repro.plan.presets.msbfs_policy` — the direction heuristic with
early termination off) over :class:`~repro.core.bitwise.BitwiseTraversal`
with the engine-level MS-BFS switches (``reset_per_level``,
``thread_per_instance``) on the Xeon device preset, run through the
shared random-groups loop.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.common import run_random_groups
from repro.core.bitwise import BitwiseTraversal
from repro.core.result import ConcurrentResult
from repro.graph.csr import CSRGraph
from repro.gpusim.config import XEON_CPU
from repro.gpusim.device import Device
from repro.plan.policy import DirectionPolicy, HeuristicPolicy
from repro.plan.presets import msbfs_policy


class MSBFS:
    """Multi-source BFS with per-level status reset on a CPU."""

    name = "ms-bfs"

    def __init__(
        self,
        graph: CSRGraph,
        group_size: int = 64,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.group_size = group_size
        self.device = device or Device(XEON_CPU)
        self.seed = seed
        if policy is None:
            planner = msbfs_policy()
        else:
            planner = HeuristicPolicy.from_direction_policy(
                policy, early_termination=False
            )
        self._engine = BitwiseTraversal(
            graph,
            self.device,
            policy,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
            planner=planner,
        )

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources in randomly formed groups."""
        return run_random_groups(
            self._engine,
            self.name,
            self.graph.num_vertices,
            sources,
            self.group_size,
            self.seed,
            max_depth=max_depth,
            store_depths=store_depths,
        )
