"""MS-BFS baseline (Then et al., VLDB 2015) on the CPU cost model.

Faithful to how the iBFS paper characterizes it (sections 1, 6, 9):

* bitwise per-instance statuses, but the frontier ("visit") array is
  **reset at each level**, so the status array does not remember all
  visited vertices and bottom-up **cannot terminate early**;
* a single software thread runs each BFS instance, so no atomics are
  needed, but only ``N`` threads are ever active;
* instances are grouped randomly (no GroupBy).

Implementation-wise this reuses :class:`~repro.core.bitwise.BitwiseTraversal`
with ``early_termination=False``, ``reset_per_level=True`` and
``thread_per_instance=True`` on the Xeon device preset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.config import XEON_CPU
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.bfs.direction import DirectionPolicy
from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups
from repro.core.result import ConcurrentResult, GroupStats


class MSBFS:
    """Multi-source BFS with per-level status reset on a CPU."""

    name = "ms-bfs"

    def __init__(
        self,
        graph: CSRGraph,
        group_size: int = 64,
        device: Optional[Device] = None,
        policy: Optional[DirectionPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.group_size = group_size
        self.device = device or Device(XEON_CPU)
        self.seed = seed
        self._engine = BitwiseTraversal(
            graph,
            self.device,
            policy,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
        )

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources in randomly formed groups."""
        sources = [int(s) for s in sources]
        groups = random_groups(sources, self.group_size, self.seed)
        counters = ProfilerCounters()
        group_stats: List[GroupStats] = []
        depth_rows = {} if store_depths else None
        for group in groups:
            depths, record, stats = self._engine.run_group(
                group, max_depth=max_depth
            )
            counters.merge(record.counters)
            group_stats.append(stats)
            if depth_rows is not None:
                for row, source in enumerate(group):
                    depth_rows[source] = depths[row]
        matrix = None
        if depth_rows is not None:
            matrix = np.stack([depth_rows[s] for s in sources])
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=sum(g.seconds for g in group_stats),
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
            groups=group_stats,
        )
