"""SpMM-BC baseline: concurrent top-down-only GPU BFS.

The regularized-centrality system of Sariyuce et al. [27] "also extends
the GPU-based BFS to concurrent BFS, but it does not support bottom-up
BFS" (section 9).  We model it as the bitwise concurrent engine with
bottom-up disabled and random grouping: it enjoys joint execution of
many instances (hence beating B40C) but pays full top-down inspection
cost at the dense middle levels where iBFS switches to bottom-up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.device import Device
from repro.bfs.direction import DirectionPolicy
from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups
from repro.core.result import ConcurrentResult, GroupStats


class SpMMBC:
    """Concurrent top-down-only bitwise BFS with random groups."""

    name = "spmm-bc"

    def __init__(
        self,
        graph: CSRGraph,
        group_size: int = 64,
        device: Optional[Device] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.group_size = group_size
        self.device = device or Device()
        self.seed = seed
        policy = DirectionPolicy(allow_bottom_up=False)
        self._engine = BitwiseTraversal(graph, self.device, policy)

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources in randomly formed groups."""
        sources = [int(s) for s in sources]
        groups = random_groups(sources, self.group_size, self.seed)
        counters = ProfilerCounters()
        group_stats: List[GroupStats] = []
        depth_rows = {} if store_depths else None
        for group in groups:
            depths, record, stats = self._engine.run_group(
                group, max_depth=max_depth
            )
            counters.merge(record.counters)
            group_stats.append(stats)
            if depth_rows is not None:
                for row, source in enumerate(group):
                    depth_rows[source] = depths[row]
        matrix = None
        if depth_rows is not None:
            matrix = np.stack([depth_rows[s] for s in sources])
        return ConcurrentResult(
            engine=self.name,
            sources=sources,
            seconds=sum(g.seconds for g in group_stats),
            counters=counters,
            depths=matrix,
            num_vertices=self.graph.num_vertices,
            groups=group_stats,
        )
