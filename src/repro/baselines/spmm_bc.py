"""SpMM-BC baseline: concurrent top-down-only GPU BFS.

The regularized-centrality system of Sariyuce et al. [27] "also extends
the GPU-based BFS to concurrent BFS, but it does not support bottom-up
BFS" (section 9).  Under the planner this is nothing but a policy
preset — :func:`repro.plan.presets.spmm_bc_policy`, a top-down-only
:class:`~repro.plan.policy.FixedPolicy` — over the bitwise concurrent
engine with random grouping: it enjoys joint execution of many
instances (hence beating B40C) but pays full top-down inspection cost
at the dense middle levels where iBFS switches to bottom-up.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.common import run_random_groups
from repro.core.bitwise import BitwiseTraversal
from repro.core.result import ConcurrentResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.plan.presets import spmm_bc_policy


class SpMMBC:
    """Concurrent top-down-only bitwise BFS with random groups."""

    name = "spmm-bc"

    def __init__(
        self,
        graph: CSRGraph,
        group_size: int = 64,
        device: Optional[Device] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.group_size = group_size
        self.device = device or Device()
        self.seed = seed
        self._engine = BitwiseTraversal(
            graph, self.device, planner=spmm_bc_policy()
        )

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> ConcurrentResult:
        """Traverse from all sources in randomly formed groups."""
        return run_random_groups(
            self._engine,
            self.name,
            self.graph.num_vertices,
            sources,
            self.group_size,
            self.seed,
            max_depth=max_depth,
            store_depths=store_depths,
        )
